//! Endpoint routing and JSON rendering (DESIGN.md §16).
//!
//! The router is transport-free: it maps one parsed [`Request`] (plus the
//! peer identity and arrival instant) to a status + JSON body, so the
//! whole endpoint surface is testable without sockets. The connection
//! loop in `http::mod` owns the bytes on either side.
//!
//! Endpoints:
//!
//! | method+path    | body                                        | answer |
//! |----------------|---------------------------------------------|--------|
//! | `POST /relax`  | `{"term"\|"concept", "context"?, "k"?}`     | one served result |
//! | `POST /batch`  | `{"queries":[{"concept","context"?}],"k"?}` | per-query results |
//! | `POST /explain`| `{"query","candidate","context"?}`          | Eq. 1–5 derivation |
//! | `POST /reload` | `{"path"}`                                  | new epoch |
//! | `GET /health`  | —                                           | liveness + epoch |
//! | `GET /metrics` | —                                           | registry snapshot |
//!
//! Error statuses follow the server's error taxonomy: `NotFound` → 404,
//! `Overloaded` (shed/deadline/rate limit) → 429, invalid input → 400,
//! anything else → 500. The deadline header `x-medkb-deadline-ms` turns
//! into an absolute [`Instant`] at parse time and rides the existing
//! admission-control deadline path end to end.

use std::sync::Arc;
use std::time::{Duration, Instant};

use medkb_obs::{Counter, Histogram, Registry};
use medkb_types::{ContextId, ExtConceptId, MedKbError};

use crate::http::coalesce::Coalescer;
use crate::http::json::{escape, Json};
use crate::http::parser::Request;
use crate::http::shaping::RateLimiter;
use crate::http::obs_names;
use crate::{RelaxServer, ServeResult, ServedFrom};

/// Client-supplied deadline header: milliseconds from request arrival.
pub const DEADLINE_HEADER: &str = "x-medkb-deadline-ms";
/// Client identity header for rate limiting (falls back to peer IP).
pub const CLIENT_HEADER: &str = "x-medkb-client";

/// Upper bound on `k` a request may ask for.
const MAX_K: usize = 4096;
/// Upper bound on `/batch` fan-out per request.
const MAX_BATCH_QUERIES: usize = 4096;

/// A routed response: status plus a JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body (always non-empty).
    pub body: String,
}

impl Response {
    fn ok(body: String) -> Self {
        Self { status: 200, body }
    }

    fn error(status: u16, detail: &str) -> Self {
        Self { status, body: format!("{{\"error\":{}}}", escape(detail)) }
    }

    /// Serialize as HTTP/1.1 response bytes.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let conn = if keep_alive { "keep-alive" } else { "close" };
        format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\
             connection: {}\r\n\r\n{}",
            self.status,
            status_text(self.status),
            self.body.len(),
            conn,
            self.body
        )
        .into_bytes()
    }
}

/// Reason phrases for the statuses this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        _ => "Response",
    }
}

struct RouterMetrics {
    requests: Arc<Counter>,
    ok: Arc<Counter>,
    client_error: Arc<Counter>,
    rate_limited: Arc<Counter>,
    shed: Arc<Counter>,
    server_error: Arc<Counter>,
    request_us: Arc<Histogram>,
    deadline_propagated: Arc<Counter>,
}

impl RouterMetrics {
    fn resolve(registry: &Registry) -> Self {
        Self {
            requests: registry.counter(obs_names::REQUESTS),
            ok: registry.counter(obs_names::RESPONSES_OK),
            client_error: registry.counter(obs_names::RESPONSES_CLIENT_ERROR),
            rate_limited: registry.counter(obs_names::RESPONSES_RATE_LIMITED),
            shed: registry.counter(obs_names::RESPONSES_SHED),
            server_error: registry.counter(obs_names::RESPONSES_SERVER_ERROR),
            request_us: registry.latency(obs_names::REQUEST_US),
            deadline_propagated: registry.counter(obs_names::DEADLINE_PROPAGATED),
        }
    }
}

/// The endpoint surface over one [`RelaxServer`].
pub struct Router {
    server: Arc<RelaxServer>,
    registry: Option<Arc<Registry>>,
    limiter: RateLimiter,
    coalescer: Option<Coalescer>,
    default_k: usize,
    metrics: Option<RouterMetrics>,
}

impl Router {
    /// Assemble the routing surface. `coalescer: None` serves every
    /// `/relax` inline (used by tests and single-user deployments).
    pub fn new(
        server: Arc<RelaxServer>,
        registry: Option<Arc<Registry>>,
        limiter: RateLimiter,
        coalescer: Option<Coalescer>,
        default_k: usize,
    ) -> Self {
        let metrics = registry.as_deref().map(RouterMetrics::resolve);
        Self { server, registry, limiter, coalescer, default_k, metrics }
    }

    /// Route one request. `peer` is the connection's remote IP (the rate
    /// limit fallback key); `now` is the request's arrival instant.
    pub fn handle(&self, req: &Request, peer: &str, now: Instant) -> Response {
        let started = Instant::now();
        if let Some(m) = &self.metrics {
            m.requests.inc();
        }
        let response = self.dispatch(req, peer, now);
        if let Some(m) = &self.metrics {
            m.request_us.record(started.elapsed().as_micros() as u64);
            match response.status {
                200 => m.ok.inc(),
                429 => m.shed.inc(),
                s if (400..500).contains(&s) => m.client_error.inc(),
                _ => m.server_error.inc(),
            }
        }
        response
    }

    fn dispatch(&self, req: &Request, peer: &str, now: Instant) -> Response {
        // Shaping first: a rate-limited client must not cost a body parse,
        // let alone a relaxation.
        let client = req.header(CLIENT_HEADER).unwrap_or(peer);
        if !self.limiter.try_admit(client, now) {
            if let Some(m) = &self.metrics {
                m.rate_limited.inc();
            }
            return Response::error(429, &format!("client {client:?} over rate limit"));
        }
        let deadline = match req.header(DEADLINE_HEADER) {
            None => None,
            Some(v) => match v.parse::<u64>() {
                Ok(ms) => {
                    if let Some(m) = &self.metrics {
                        m.deadline_propagated.inc();
                    }
                    Some(now + Duration::from_millis(ms))
                }
                Err(_) => {
                    return Response::error(
                        400,
                        &format!("bad {DEADLINE_HEADER} value {v:?} (want milliseconds)"),
                    )
                }
            },
        };
        match (req.method.as_str(), req.path()) {
            ("GET", "/health") => Response::ok(format!(
                "{{\"status\":\"ok\",\"epoch\":{}}}",
                self.server.epoch()
            )),
            ("GET", "/metrics") => match &self.registry {
                Some(r) => Response::ok(r.snapshot().to_json()),
                None => Response::error(404, "no metrics registry attached"),
            },
            ("POST", "/relax") => self.relax(req, deadline),
            ("POST", "/batch") => self.batch(req, deadline),
            ("POST", "/explain") => self.explain(req),
            ("POST", "/reload") => self.reload(req),
            (_, "/health" | "/metrics" | "/relax" | "/batch" | "/explain" | "/reload") => {
                Response::error(405, &format!("method {} not allowed here", req.method))
            }
            (_, path) => Response::error(404, &format!("no such endpoint {path:?}")),
        }
    }

    fn relax(&self, req: &Request, deadline: Option<Instant>) -> Response {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let k = match field_k(&body, self.default_k) {
            Ok(k) => k,
            Err(r) => return r,
        };
        let context = match field_context(&body, "context") {
            Ok(c) => c,
            Err(r) => return r,
        };
        // Accept either a free-text term (resolved against the current
        // epoch, exactly like `RelaxServer::serve`) or a pre-resolved
        // concept id. Both funnel into the concept path so concurrent
        // users coalesce into one `relax_concepts_batch`.
        let concept: ExtConceptId = match (body.get("term"), body.get("concept")) {
            (Some(t), None) => {
                let Some(term) = t.as_str() else {
                    return Response::error(400, "\"term\" must be a string");
                };
                match self.server.snapshot().relaxer().resolve_term(term) {
                    Ok(c) => c,
                    Err(e) => return error_response(&e),
                }
            }
            (None, Some(c)) => match c.as_u64() {
                Some(raw) if raw <= u64::from(u32::MAX) => ExtConceptId::new(raw as u32),
                _ => return Response::error(400, "\"concept\" must be a u32 id"),
            },
            _ => {
                return Response::error(400, "body must have exactly one of \"term\"/\"concept\"")
            }
        };
        let served = match &self.coalescer {
            Some(c) => c.submit(concept, context, k, deadline),
            None => self.server.serve_concept_with_deadline(concept, context, k, deadline),
        };
        match served {
            Ok(sr) => Response::ok(render_serve_result(&sr)),
            Err(e) => error_response(&e),
        }
    }

    fn batch(&self, req: &Request, deadline: Option<Instant>) -> Response {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let k = match field_k(&body, self.default_k) {
            Ok(k) => k,
            Err(r) => return r,
        };
        let Some(items) = body.get("queries").and_then(Json::as_arr) else {
            return Response::error(400, "\"queries\" must be an array");
        };
        if items.len() > MAX_BATCH_QUERIES {
            return Response::error(
                400,
                &format!("at most {MAX_BATCH_QUERIES} queries per batch"),
            );
        }
        let mut queries: Vec<(ExtConceptId, Option<ContextId>)> =
            Vec::with_capacity(items.len());
        for item in items {
            let Some(raw) = item.get("concept").and_then(Json::as_u64) else {
                return Response::error(400, "each query needs a \"concept\" u32 id");
            };
            if raw > u64::from(u32::MAX) {
                return Response::error(400, "\"concept\" must be a u32 id");
            }
            let context = match field_context(item, "context") {
                Ok(c) => c,
                Err(r) => return r,
            };
            queries.push((ExtConceptId::new(raw as u32), context));
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(queries.len().max(1));
        let results =
            self.server.serve_concepts_batch_with_deadline(&queries, k, threads, deadline);
        let rows: Vec<String> = results
            .iter()
            .map(|r| match r {
                Ok(sr) => format!("{{\"status\":200,\"value\":{}}}", render_serve_result(sr)),
                Err(e) => {
                    let er = error_response(e);
                    format!("{{\"status\":{},\"value\":{}}}", er.status, er.body)
                }
            })
            .collect();
        Response::ok(format!(
            "{{\"epoch\":{},\"results\":[{}]}}",
            self.server.epoch(),
            rows.join(",")
        ))
    }

    fn explain(&self, req: &Request) -> Response {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let (query, candidate) = match (
            body.get("query").and_then(Json::as_u64),
            body.get("candidate").and_then(Json::as_u64),
        ) {
            (Some(q), Some(c)) if q <= u64::from(u32::MAX) && c <= u64::from(u32::MAX) => {
                (ExtConceptId::new(q as u32), ExtConceptId::new(c as u32))
            }
            _ => return Response::error(400, "\"query\" and \"candidate\" must be u32 ids"),
        };
        let context = match field_context(&body, "context") {
            Ok(c) => c,
            Err(r) => return r,
        };
        let snap = self.server.snapshot();
        let text = snap.relaxer().explain(query, candidate, context);
        Response::ok(format!(
            "{{\"epoch\":{},\"explanation\":{}}}",
            snap.epoch(),
            escape(&text)
        ))
    }

    fn reload(&self, req: &Request) -> Response {
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(r) => return r,
        };
        let Some(path) = body.get("path").and_then(Json::as_str) else {
            return Response::error(400, "\"path\" must be a string (a WorldStore directory)");
        };
        match self.server.publish_from_store(std::path::Path::new(path)) {
            Ok(epoch) => Response::ok(format!("{{\"epoch\":{epoch}}}")),
            Err(e) => error_response(&e),
        }
    }
}

fn parse_body(req: &Request) -> std::result::Result<Json, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "body is not UTF-8"))?;
    Json::parse(text).map_err(|e| Response::error(400, &format!("bad JSON body: {e}")))
}

fn field_k(body: &Json, default_k: usize) -> std::result::Result<usize, Response> {
    match body.get("k") {
        None => Ok(default_k),
        Some(v) => match v.as_u64() {
            Some(k) if (1..=MAX_K as u64).contains(&k) => Ok(k as usize),
            _ => Err(Response::error(400, &format!("\"k\" must be in 1..={MAX_K}"))),
        },
    }
}

fn field_context(body: &Json, key: &str) -> std::result::Result<Option<ContextId>, Response> {
    match body.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => match v.as_u64() {
            Some(raw) if raw <= u64::from(u32::MAX) => Ok(Some(ContextId::new(raw as u32))),
            _ => Err(Response::error(400, &format!("{key:?} must be a u32 id or null"))),
        },
    }
}

/// Map a serving error to its wire status + body.
fn error_response(e: &MedKbError) -> Response {
    let status = match e {
        MedKbError::NotFound { .. } => 404,
        MedKbError::Overloaded { .. } => 429,
        MedKbError::InvalidArgument { .. } | MedKbError::Validation { .. } => 400,
        _ => 500,
    };
    Response::error(status, &e.to_string())
}

/// Render one [`ServeResult`] as the response envelope. Floats use Rust's
/// `{:?}` (shortest round-trip) formatting, which is what makes the wire
/// bytes a faithful function of the in-process `f64`s — the bench asserts
/// wire answers bit-identical to in-process ones through this renderer.
pub fn render_serve_result(sr: &ServeResult) -> String {
    format!(
        "{{\"epoch\":{},\"served_from\":{},\"result\":{}}}",
        sr.epoch,
        escape(served_from_label(sr.served_from)),
        render_relaxation(&sr.result)
    )
}

/// Stable wire labels for [`ServedFrom`].
pub fn served_from_label(sf: ServedFrom) -> &'static str {
    match sf {
        ServedFrom::Cache => "cache",
        ServedFrom::Computed => "computed",
        ServedFrom::SharedFlight => "shared_flight",
    }
}

/// Render a [`medkb_core::RelaxationResult`] as its wire JSON object.
/// Public so the bench can compare over-the-wire bytes to in-process
/// results rendered identically.
pub fn render_relaxation(r: &medkb_core::RelaxationResult) -> String {
    let answers: Vec<String> = r
        .answers
        .iter()
        .map(|a| {
            let instances: Vec<String> =
                a.instances.iter().map(|i| i.raw().to_string()).collect();
            format!(
                "{{\"concept\":{},\"score\":{:?},\"hops\":{},\"instances\":[{}]}}",
                a.concept.raw(),
                a.score,
                a.hops,
                instances.join(",")
            )
        })
        .collect();
    format!(
        "{{\"query_concept\":{},\"radius_used\":{},\"answers\":[{}]}}",
        r.query_concept.raw(),
        r.radius_used,
        answers.join(",")
    )
}

/// The connection loop's response for parse-level errors (no routed
/// request exists yet) — same envelope shape as endpoint errors.
pub(crate) fn parse_error_response(status: u16, detail: &str) -> Response {
    Response::error(status, detail)
}

/// Convenience used in tests: route a body-bearing POST.
#[cfg(test)]
pub(crate) fn post(target: &str, body: &str) -> Request {
    Request {
        method: "POST".into(),
        target: target.into(),
        http11: true,
        headers: vec![("content-length".into(), body.len().to_string())],
        body: body.as_bytes().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_texts_cover_emitted_codes() {
        for s in [200, 400, 404, 405, 413, 429, 431, 500, 501] {
            assert_ne!(status_text(s), "Response", "{s} needs a phrase");
        }
    }

    #[test]
    fn response_bytes_frame_the_body() {
        let r = Response::ok("{\"x\":1}".into());
        let bytes = r.to_bytes(true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 7\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"), "{text}");
        let closed = String::from_utf8(r.to_bytes(false)).unwrap();
        assert!(closed.contains("connection: close\r\n"), "{closed}");
    }

    #[test]
    fn error_taxonomy_maps_to_wire_statuses() {
        assert_eq!(error_response(&MedKbError::overloaded("x")).status, 429);
        assert_eq!(error_response(&MedKbError::not_found("concept", "y")).status, 404);
        assert_eq!(error_response(&MedKbError::invalid("z")).status, 400);
        assert_eq!(
            error_response(&MedKbError::Corrupt { detail: "w".into() }).status,
            500
        );
    }
}
