//! The serving front door: admission control → snapshot load → cache
//! read-through → (on miss) Algorithm 2 against the pinned epoch.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use medkb_core::{IngestOutput, RelaxConfig, RelaxationResult};
use medkb_obs::{Counter, Gauge, Histogram, Registry};
use medkb_types::{ContextId, ExtConceptId, MedKbError, Result};

use crate::cache::{CacheKey, Lookup, QueryKey, ResultCache};
use crate::obs_names;
use crate::snapshot::{Snapshot, SnapshotStore};

/// Serving knobs, all orthogonal to relaxation semantics: nothing here can
/// change an answer, only whether/when one is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Cache shard count (rounded up to a power of two, minimum 1).
    pub shards: usize,
    /// LRU capacity per shard; total capacity is `shards × capacity`.
    pub shard_capacity: usize,
    /// Admission bound: requests beyond this many concurrently in flight
    /// are shed with [`MedKbError::Overloaded`] instead of queuing.
    pub max_in_flight: usize,
    /// Request deadline, started when a request (or a whole batch — the
    /// batch entry points share one deadline across all their queries)
    /// enters the server. Checked at admission, re-checked before every
    /// computation, and bounds how long a request waits on a shared
    /// in-flight computation. `None` disables deadline enforcement.
    pub deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { shards: 16, shard_capacity: 512, max_in_flight: 1024, deadline: None }
    }
}

/// Pre-resolved handles, same pattern as the relaxation engine's metrics.
struct ServeMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    joins: Arc<Counter>,
    shed: Arc<Counter>,
    swaps: Arc<Counter>,
    epoch: Arc<Gauge>,
    in_flight: Arc<Gauge>,
    lookup: Arc<Histogram>,
    latency: Arc<Histogram>,
}

impl ServeMetrics {
    fn resolve(registry: &Registry) -> Self {
        Self {
            hits: registry.counter(obs_names::CACHE_HITS),
            misses: registry.counter(obs_names::CACHE_MISSES),
            joins: registry.counter(obs_names::SINGLEFLIGHT_WAITS),
            shed: registry.counter(obs_names::SHED),
            swaps: registry.counter(obs_names::SNAPSHOT_SWAPS),
            epoch: registry.gauge(obs_names::EPOCH),
            in_flight: registry.gauge(obs_names::IN_FLIGHT),
            lookup: registry.latency(obs_names::CACHE_LOOKUP_US),
            latency: registry.latency(obs_names::LATENCY_US),
        }
    }
}

/// Where a served answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Resident in the cache.
    Cache,
    /// Computed by this request (single-flight leader).
    Computed,
    /// Computed by a concurrent identical request; this one waited.
    SharedFlight,
}

/// One served answer: the (shared, immutable) relaxation result plus the
/// epoch that produced it and how it was satisfied.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// The answer set, shared with the cache (never cloned per request).
    pub result: Arc<RelaxationResult>,
    /// The snapshot epoch the answers were computed against.
    pub epoch: u64,
    /// Cache hit / computed / joined an in-flight computation.
    pub served_from: ServedFrom,
}

impl ServeResult {
    /// Whether the request was satisfied without running Algorithm 2 in
    /// this call (cache hit or joined flight).
    pub fn cached(&self) -> bool {
        self.served_from != ServedFrom::Computed
    }
}

/// Decrements the in-flight count when a request leaves, however it leaves,
/// and mirrors the new depth into the gauge so an idle server reads 0 (the
/// gauge is last-writer-wins; concurrent exits converge on the true depth).
struct InFlightGuard<'a>(&'a AtomicUsize, Option<&'a Gauge>);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let now = self.0.fetch_sub(1, Ordering::AcqRel) - 1;
        if let Some(g) = self.1 {
            g.set(now as u64);
        }
    }
}

/// The serving layer: snapshot store + sharded cache + admission control.
///
/// Correctness contract (pinned by the stress suite): every returned
/// answer set is bit-identical to an uncached
/// [`medkb_core::QueryRelaxer::relax`] against the epoch reported in the
/// [`ServeResult`] — caching, sharding, single-flight, and swaps are all
/// invisible in the results.
pub struct RelaxServer {
    store: SnapshotStore,
    cache: ResultCache,
    config: ServeConfig,
    in_flight: AtomicUsize,
    metrics: Option<ServeMetrics>,
}

impl RelaxServer {
    /// Build over an ingested world. Observability comes from
    /// `relax_config.obs`: when a registry is attached, both the serve
    /// metrics and the underlying `relax.*` metrics record into it.
    pub fn new(ingested: IngestOutput, relax_config: RelaxConfig, config: ServeConfig) -> Self {
        let metrics = relax_config.obs.registry().map(ServeMetrics::resolve);
        let retired = relax_config
            .obs
            .registry()
            .map(|r| r.counter(obs_names::SNAPSHOT_RETIRED));
        let evictions = relax_config
            .obs
            .registry()
            .map(|r| r.counter(obs_names::CACHE_EVICTIONS));
        let store = SnapshotStore::with_retired_counter(ingested, relax_config, retired);
        let cache =
            ResultCache::with_eviction_counter(config.shards, config.shard_capacity, evictions);
        if let Some(m) = &metrics {
            m.epoch.set(0);
        }
        Self { store, cache, config, in_flight: AtomicUsize::new(0), metrics }
    }

    /// Serve `[term, context]` with an instance budget of `k`.
    ///
    /// The term is normalized once, up front, and that normalized form is
    /// used both as the cache key and as the computation input — so two
    /// spellings that normalize identically share one entry *and* one
    /// computation, and a key match always implies an input match.
    ///
    /// # Errors
    /// [`MedKbError::Overloaded`] when shed (admission bound or deadline) —
    /// retryable; [`MedKbError::NotFound`] when the term resolves to no
    /// concept — not retryable, and never cached.
    pub fn serve(&self, term: &str, context: Option<ContextId>, k: usize) -> Result<ServeResult> {
        self.serve_with_deadline(term, context, k, self.config_deadline())
    }

    /// [`RelaxServer::serve`] against an explicit absolute deadline
    /// (e.g. propagated from a network request header). `None` disables
    /// deadline enforcement for this request regardless of
    /// [`ServeConfig::deadline`]; callers that want the config default
    /// should go through [`RelaxServer::serve`].
    pub fn serve_with_deadline(
        &self,
        term: &str,
        context: Option<ContextId>,
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<ServeResult> {
        self.serve_key(QueryKey::Term(medkb_text::normalize(term)), context, k, deadline)
    }

    /// [`RelaxServer::serve`] from an already-resolved query concept.
    pub fn serve_concept(
        &self,
        query: ExtConceptId,
        context: Option<ContextId>,
        k: usize,
    ) -> Result<ServeResult> {
        self.serve_concept_with_deadline(query, context, k, self.config_deadline())
    }

    /// [`RelaxServer::serve_concept`] against an explicit absolute deadline
    /// (see [`RelaxServer::serve_with_deadline`]).
    pub fn serve_concept_with_deadline(
        &self,
        query: ExtConceptId,
        context: Option<ContextId>,
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<ServeResult> {
        self.serve_key(QueryKey::Concept(query), context, k, deadline)
    }

    /// The per-request absolute deadline the config implies, started now.
    fn config_deadline(&self) -> Option<Instant> {
        self.config.deadline.map(|d| Instant::now() + d)
    }

    /// Record a shed in the metrics and build the error.
    fn shed(&self, detail: impl Into<String>) -> MedKbError {
        if let Some(m) = &self.metrics {
            m.shed.inc();
        }
        MedKbError::overloaded(detail)
    }

    fn serve_key(
        &self,
        query: QueryKey,
        context: Option<ContextId>,
        k: usize,
        deadline: Option<Instant>,
    ) -> Result<ServeResult> {
        let _span = self.metrics.as_ref().map(|m| m.latency.time());

        // Admission: bounded in-flight gauge, load-shed distinct from
        // NotFound. The guard keeps the count exact on every exit path.
        let in_flight = self.in_flight.fetch_add(1, Ordering::AcqRel) + 1;
        let _guard =
            InFlightGuard(&self.in_flight, self.metrics.as_ref().map(|m| &*m.in_flight));
        if let Some(m) = &self.metrics {
            m.in_flight.set(in_flight as u64);
        }
        if in_flight > self.config.max_in_flight.max(1) {
            return Err(self.shed(format!(
                "{in_flight} requests in flight (limit {})",
                self.config.max_in_flight.max(1)
            )));
        }
        // A request that arrives already past its deadline is dead on
        // arrival: the client gave up, so even a cache probe is wasted
        // work. This is also what makes the batch path's between-query
        // re-check shed instead of completing (the regression the
        // `expired_mid_batch_deadline_sheds` test pins).
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err(self.shed("deadline exceeded before admission"));
            }
        }

        // Pin the epoch for the whole request: key and computation both use
        // this snapshot, so a concurrent publish can't mix epochs.
        let snap: Arc<Snapshot> = self.store.load();
        let key = CacheKey {
            query: query.clone(),
            context,
            fingerprint: snap.fingerprint(),
            k,
            epoch: snap.epoch(),
        };

        // Timed fast-path probe (the common case under a warm cache).
        let probe_started = Instant::now();
        let probed = self.cache.get(&key);
        if let Some(m) = &self.metrics {
            m.lookup.record(probe_started.elapsed().as_micros() as u64);
        }
        if let Some(v) = probed {
            if let Some(m) = &self.metrics {
                m.hits.inc();
            }
            return Ok(ServeResult { result: v, epoch: snap.epoch(), served_from: ServedFrom::Cache });
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err(self.shed("deadline exceeded before computation"));
            }
        }

        let (value, lookup) = self.cache.get_or_compute(key, deadline, || match &query {
            QueryKey::Term(t) => snap.relaxer().relax(t, context, k),
            QueryKey::Concept(c) => snap.relaxer().relax_concept(*c, context, k),
        })?;
        let served_from = match lookup {
            // Lost a race: completed between the probe and the read-through.
            Lookup::Hit => ServedFrom::Cache,
            Lookup::Miss => ServedFrom::Computed,
            Lookup::Joined => ServedFrom::SharedFlight,
        };
        if let Some(m) = &self.metrics {
            match served_from {
                ServedFrom::Cache => m.hits.inc(),
                ServedFrom::Computed => m.misses.inc(),
                ServedFrom::SharedFlight => {
                    // A join is a hit from the traffic perspective (no
                    // Algorithm 2 ran for it) and separately visible.
                    m.hits.inc();
                    m.joins.inc();
                }
            }
        }
        Ok(ServeResult { result: value, epoch: snap.epoch(), served_from })
    }

    /// Serve a batch of already-resolved queries, sharded over scoped
    /// threads, results in input order. Mirrors
    /// [`medkb_core::QueryRelaxer::relax_concepts_batch`] but reads through
    /// the cache, so repeated queries within and across batches compute
    /// once per epoch.
    ///
    /// [`ServeConfig::deadline`] bounds the **whole batch**, not each
    /// query: the deadline starts once at batch entry and is re-checked
    /// between queries inside every shard, so work the batch can no longer
    /// finish in time is shed with [`MedKbError::Overloaded`] instead of
    /// running arbitrarily past the deadline (one slow prefix used to buy
    /// every later query a fresh full deadline).
    pub fn serve_concepts_batch(
        &self,
        queries: &[(ExtConceptId, Option<ContextId>)],
        k: usize,
    ) -> Vec<Result<ServeResult>> {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(queries.len().max(1));
        self.serve_concepts_batch_with_threads(queries, k, threads)
    }

    /// [`RelaxServer::serve_concepts_batch`] with an explicit thread count.
    pub fn serve_concepts_batch_with_threads(
        &self,
        queries: &[(ExtConceptId, Option<ContextId>)],
        k: usize,
        threads: usize,
    ) -> Vec<Result<ServeResult>> {
        self.serve_concepts_batch_with_deadline(queries, k, threads, self.config_deadline())
    }

    /// [`RelaxServer::serve_concepts_batch_with_threads`] against an
    /// explicit absolute deadline shared by the whole batch (the network
    /// front end propagates a request header here). Every shard re-checks
    /// the deadline before each query it serves; once it has passed, the
    /// remaining slots come back as [`MedKbError::Overloaded`] — late work
    /// is shed, never silently completed.
    pub fn serve_concepts_batch_with_deadline(
        &self,
        queries: &[(ExtConceptId, Option<ContextId>)],
        k: usize,
        threads: usize,
        deadline: Option<Instant>,
    ) -> Vec<Result<ServeResult>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let threads = threads.max(1).min(queries.len());
        if threads == 1 {
            return queries
                .iter()
                .map(|&(q, ctx)| self.serve_concept_with_deadline(q, ctx, k, deadline))
                .collect();
        }
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|shard| {
                    scope.spawn(move || {
                        shard
                            .iter()
                            .map(|&(q, ctx)| {
                                self.serve_concept_with_deadline(q, ctx, k, deadline)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("serve shard")).collect()
        })
    }

    /// Publish a re-ingested world as the next epoch and return its number.
    /// In-flight readers keep their pinned epoch; new requests key against
    /// the new one, which implicitly invalidates every cached entry (the
    /// epoch is part of the key — stale entries age out of the LRU).
    pub fn publish(&self, ingested: IngestOutput) -> u64 {
        let epoch = self.store.publish(ingested);
        if let Some(m) = &self.metrics {
            m.swaps.inc();
            m.epoch.set(epoch);
        }
        epoch
    }

    /// Publish the world persisted at `path` (a `WorldStore` directory) as
    /// the next epoch — the hot-reload entry point the HTTP front end's
    /// `/reload` endpoint drives. Same epoch-swap semantics as
    /// [`RelaxServer::publish`].
    ///
    /// # Errors
    /// Propagates `WorldStore::open` failures (missing/corrupt store);
    /// the currently published epoch is untouched on error.
    pub fn publish_from_store(&self, path: &std::path::Path) -> Result<u64> {
        let epoch = self.store.publish_from_store(path)?;
        if let Some(m) = &self.metrics {
            m.swaps.inc();
            m.epoch.set(epoch);
        }
        Ok(epoch)
    }

    /// The currently published snapshot (readers may hold it across swaps).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.load()
    }

    /// The currently published epoch number.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Resident cache entries (across all shards, all epochs).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

impl fmt::Debug for RelaxServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RelaxServer")
            .field("epoch", &self.epoch())
            .field("cache_len", &self.cache.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}
