//! Corpus statistics: sanity metrics for the generated monographs.
//!
//! DESIGN.md argues the synthetic corpus carries realistic skew; this
//! module measures it. The Zipf exponent of the token frequency
//! distribution and the type/token curve are the standard checks that a
//! text collection "looks like language".

use medkb_types::{IdVec, TokenId};

use crate::model::Corpus;

/// Summary statistics of a corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Documents.
    pub documents: usize,
    /// Sentences.
    pub sentences: usize,
    /// Token occurrences.
    pub tokens: usize,
    /// Distinct token types.
    pub types: usize,
    /// Mean sentence length in tokens.
    pub mean_sentence_len: f64,
    /// Least-squares Zipf exponent `s` fitted on `log freq = c − s·log
    /// rank` over the top ranks (natural language sits near 1).
    pub zipf_exponent: f64,
}

impl CorpusStats {
    /// Compute the statistics of `corpus`.
    pub fn compute(corpus: &Corpus) -> Self {
        let mut counts: IdVec<TokenId, u64> = IdVec::filled(0, corpus.vocab.len());
        let mut tokens = 0usize;
        let mut sentences = 0usize;
        for s in corpus.sentences() {
            sentences += 1;
            for &t in &s.tokens {
                counts[t] += 1;
                tokens += 1;
            }
        }
        let types = counts.iter().filter(|(_, &c)| c > 0).count();
        let mut freqs: Vec<u64> =
            counts.iter().map(|(_, &c)| c).filter(|&c| c > 0).collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let zipf_exponent = fit_zipf(&freqs);
        Self {
            documents: corpus.len(),
            sentences,
            tokens,
            types,
            mean_sentence_len: if sentences == 0 {
                0.0
            } else {
                tokens as f64 / sentences as f64
            },
            zipf_exponent,
        }
    }
}

/// Least-squares slope of `log f` against `−log rank` over the top 200
/// ranks (0 for degenerate inputs).
fn fit_zipf(sorted_freqs: &[u64]) -> f64 {
    let top: Vec<(f64, f64)> = sorted_freqs
        .iter()
        .take(200)
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(i, &f)| (((i + 1) as f64).ln(), (f as f64).ln()))
        .collect();
    if top.len() < 3 {
        return 0.0;
    }
    let n = top.len() as f64;
    let (sx, sy): (f64, f64) = top.iter().fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
    let (mx, my) = (sx / n, sy / n);
    let mut num = 0.0;
    let mut den = 0.0;
    for &(x, y) in &top {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    if den == 0.0 {
        0.0
    } else {
        -(num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{CorpusConfig, CorpusGenerator};
    use medkb_snomed::{GeneratedTerminology, Oracle, SnomedConfig};

    #[test]
    fn generated_corpus_is_zipfian() {
        let t = GeneratedTerminology::generate(&SnomedConfig::tiny(5));
        let o = Oracle::derive(&t, 6);
        let c = CorpusGenerator::new(&t, &o).generate(&CorpusConfig::tiny(7));
        let stats = CorpusStats::compute(&c);
        assert_eq!(stats.documents, 120);
        assert!(stats.types > 100);
        assert!(stats.mean_sentence_len > 4.0, "{stats:?}");
        assert!(
            (0.4..2.2).contains(&stats.zipf_exponent),
            "zipf exponent out of the language-like band: {stats:?}"
        );
    }

    #[test]
    fn empty_corpus_degenerates_cleanly() {
        let stats = CorpusStats::compute(&Corpus::new());
        assert_eq!(stats.tokens, 0);
        assert_eq!(stats.zipf_exponent, 0.0);
        assert_eq!(stats.mean_sentence_len, 0.0);
    }

    #[test]
    fn zipf_fit_on_synthetic_power_law() {
        // freq(rank) = 1000 / rank → exponent 1 exactly.
        let freqs: Vec<u64> = (1..=100u64).map(|r| 1000 / r).collect();
        let s = fit_zipf(&freqs);
        assert!((s - 1.0).abs() < 0.1, "{s}");
    }
}
