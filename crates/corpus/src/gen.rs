//! Synthetic corpus generation.
//!
//! The in-domain corpus is a set of drug monographs. Each sentence is
//! produced from a context-tagged template and mentions one finding concept
//! sampled with probability ∝ `popularity × affinity(concept, tag)` — the
//! oracle quantities. Counting mentions per context therefore recovers a
//! noisy estimate of context affinity, which is precisely the signal the
//! paper's per-context frequencies (Example 1) carry.
//!
//! The out-of-domain corpus (for the *Embedding-pre-trained* baseline,
//! Table 2) is generated from a *different* terminology with a different
//! seed: template and filler words overlap, concept names mostly do not —
//! reproducing the paper's observation that "many of the words contained in
//! SNOMED CT are out of its vocabulary".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use medkb_snomed::{ContextTag, GeneratedTerminology, Hierarchy, Oracle, SnomedConfig};
use medkb_text::tokenize;
use medkb_types::ExtConceptId;

use crate::model::{Corpus, Document, Sentence};

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of documents (drug monographs).
    pub docs: usize,
    /// Minimum sentences per document.
    pub min_sentences: usize,
    /// Maximum sentences per document.
    pub max_sentences: usize,
    /// Probability a mention uses a registered synonym instead of the
    /// primary name.
    pub synonym_mention_rate: f64,
    /// Probability a mention uses the colloquial rewrite (teaches trained
    /// embeddings the colloquial vocabulary).
    pub colloquial_mention_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_0003,
            docs: 1_500,
            min_sentences: 8,
            max_sentences: 22,
            synonym_mention_rate: 0.12,
            colloquial_mention_rate: 0.08,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self { seed, docs: 120, min_sentences: 5, max_sentences: 10, ..Self::default() }
    }
}

/// Sentence templates per context tag. `{d}` = drug mention, `{f}` =
/// finding mention, `{g}` = a second, semantically nearby finding (real
/// monographs co-mention related conditions — this is what trained word
/// embeddings pick up).
const TEMPLATES: [(ContextTag, &[&str]); 5] = [
    (
        ContextTag::Treatment,
        &[
            "{d} is indicated for the treatment of {f} in adults",
            "{d} relieves symptoms of {f} within days",
            "clinical studies show {d} is effective against {f}",
            "{d} is used to treat {f} and related conditions",
            "{d} is indicated for {f} as well as {g}",
            "patients with {f} or {g} respond well to {d}",
        ],
    ),
    (
        ContextTag::Risk,
        &[
            "{d} may cause {f} in some patients",
            "common adverse reactions of {d} include {f}",
            "{d} carries an increased risk of {f}",
            "discontinue {d} if {f} occurs",
            "reported reactions include {f} and {g}",
        ],
    ),
    (
        ContextTag::Monitoring,
        &[
            "patients receiving {d} should be monitored for {f}",
            "periodic assessment for {f} is recommended during {d} therapy",
        ],
    ),
    (
        ContextTag::Toxicology,
        &[
            "overdose of {d} may present with {f}",
            "toxic doses of {d} are associated with {f}",
        ],
    ),
    (
        ContextTag::General,
        &[
            "the safety profile of {d} was evaluated in randomized trials",
            "{d} is administered orally once daily with food",
            "no dose adjustment of {d} is required in elderly patients",
            "the pharmacokinetics of {d} are linear over the dose range",
            "store {d} at room temperature away from moisture",
        ],
    ),
];

/// Tag sampling weights for sentence generation.
const TAG_WEIGHTS: [(ContextTag, f64); 5] = [
    (ContextTag::Treatment, 0.38),
    (ContextTag::Risk, 0.28),
    (ContextTag::Monitoring, 0.08),
    (ContextTag::Toxicology, 0.08),
    (ContextTag::General, 0.18),
];

/// Generates corpora from a terminology + oracle.
pub struct CorpusGenerator<'a> {
    term: &'a GeneratedTerminology,
    oracle: &'a Oracle,
}

impl<'a> CorpusGenerator<'a> {
    /// A generator over the given world.
    pub fn new(term: &'a GeneratedTerminology, oracle: &'a Oracle) -> Self {
        Self { term, oracle }
    }

    /// Generate the in-domain monograph corpus.
    ///
    /// Each document is anchored on a theme finding: most of its finding
    /// mentions are drawn from the anchor's latent neighbourhood (a real
    /// drug's monograph talks about one disease area), the rest from the
    /// global popularity×affinity distribution. Paired templates co-mention
    /// two nearby findings in one sentence.
    pub fn generate(&self, config: &CorpusConfig) -> Corpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut corpus = Corpus::new();

        let findings = self.term.of_hierarchy(Hierarchy::ClinicalFinding);
        let drugs = self.term.of_hierarchy(Hierarchy::PharmaceuticalProduct);
        // Per-tag cumulative sampling tables over findings.
        // Quartic affinity weighting everywhere: a monograph essentially
        // never lists a predominantly-adverse finding as an indication, so
        // wrong-context mentions are rare enough for the per-context
        // frequencies (Example 1) to separate sharply.
        let tables: Vec<CumTable> = ContextTag::ALL
            .iter()
            .map(|&tag| {
                CumTable::build(&findings, |c| {
                    let a = self.oracle.affinity(c, tag);
                    self.term.meta[c].popularity * a * a * a * a
                })
            })
            .collect();
        let drug_table = CumTable::build(&drugs, |c| self.term.meta[c].popularity);
        let neighbors = LatentNeighbors::build(self.term, &findings, 12);

        for _ in 0..config.docs {
            let drug = drug_table.sample(&mut rng).unwrap_or(self.term.ekg.root());
            let anchor = tables[ContextTag::Treatment.index()].sample(&mut rng);
            let n = rng.gen_range(config.min_sentences..=config.max_sentences);
            let mut doc = Document::default();
            for _ in 0..n {
                let tag = sample_tag(&mut rng);
                // Theme coherence: prefer the anchor's neighbourhood, but
                // keep the mention consistent with the sentence's context
                // (rejection on context affinity, so per-context counts
                // still measure affinity).
                let accept = |rng: &mut StdRng, cand: ExtConceptId| {
                    // Quartic acceptance sharpens the context contrast: a
                    // monograph does not list a predominantly-adverse
                    // finding under "indicated for".
                    let a = self.oracle.affinity(cand, tag).clamp(0.0, 1.0);
                    rng.gen_bool(a * a * a * a)
                };
                let finding = match anchor {
                    Some(a) if rng.gen_bool(0.6) => {
                        let mut pick = None;
                        for _ in 0..6 {
                            let cand = neighbors.sample(&mut rng, a);
                            if accept(&mut rng, cand) {
                                pick = Some(cand);
                                break;
                            }
                        }
                        pick.or_else(|| tables[tag.index()].sample(&mut rng))
                    }
                    _ => tables[tag.index()].sample(&mut rng),
                };
                // The co-mentioned finding obeys the same context filter.
                let second = finding.and_then(|f| {
                    for _ in 0..4 {
                        let cand = neighbors.sample(&mut rng, f);
                        if accept(&mut rng, cand) {
                            return Some(cand);
                        }
                    }
                    None
                });
                let sentence =
                    self.render_sentence(&mut rng, config, tag, drug, finding, second);
                let tokens = tokenize(&sentence)
                    .into_iter()
                    .map(|t| corpus.vocab.intern(&t))
                    .collect();
                doc.sentences.push(Sentence { tag, tokens });
            }
            corpus.docs.push(doc);
        }
        corpus
    }

    /// Generate the out-of-domain corpus used to train the
    /// *Embedding-pre-trained* baseline: same template machinery, different
    /// terminology (seeded independently), and — crucially — a shifted word
    /// dialect: a deterministic majority of word types is mangled, so most
    /// of the in-domain medical vocabulary is out-of-vocabulary for a model
    /// trained here. This reproduces the paper's diagnosis: "many of the
    /// words contained in SNOMED CT are out of its vocabulary".
    pub fn out_of_domain(seed: u64, docs: usize) -> Corpus {
        let foreign = GeneratedTerminology::generate(&SnomedConfig {
            seed: seed ^ 0xF0E1_D2C3,
            concepts: 2_000,
            ..SnomedConfig::default()
        });
        let oracle = Oracle::derive(&foreign, seed ^ 0x0DD_C0DE);
        let generator = CorpusGenerator::new(&foreign, &oracle);
        let plain = generator.generate(&CorpusConfig { seed, docs, ..CorpusConfig::default() });
        // Re-intern with the dialect shift.
        let mut shifted = Corpus::new();
        for doc in &plain.docs {
            let mut out_doc = crate::model::Document::default();
            for s in &doc.sentences {
                let tokens = s
                    .tokens
                    .iter()
                    .map(|&t| shifted.vocab.intern(&dialect(plain.vocab.resolve(t))))
                    .collect();
                out_doc.sentences.push(Sentence { tag: s.tag, tokens });
            }
            shifted.docs.push(out_doc);
        }
        shifted
    }

    fn render_sentence(
        &self,
        rng: &mut StdRng,
        config: &CorpusConfig,
        tag: ContextTag,
        drug: ExtConceptId,
        finding: Option<ExtConceptId>,
        second: Option<ExtConceptId>,
    ) -> String {
        let pool = TEMPLATES
            .iter()
            .find(|&&(t, _)| t == tag)
            .map(|&(_, ts)| ts)
            .expect("every tag has templates");
        let template = pool[rng.gen_range(0..pool.len())];
        let drug_name = self.term.ekg.name(drug).to_string();
        let finding_name = finding.map(|f| self.mention_name(rng, config, f));
        let mut out = template.replace("{d}", &drug_name);
        out = match finding_name {
            Some(f) => out.replace("{f}", &f),
            None => out.replace("{f}", "unspecified condition"),
        };
        if out.contains("{g}") {
            let g = second
                .map(|s| self.mention_name(rng, config, s))
                .unwrap_or_else(|| "related conditions".to_string());
            out = out.replace("{g}", &g);
        }
        out
    }

    /// Surface form used for a finding mention: primary name, a registered
    /// synonym, or the colloquial rewrite.
    fn mention_name(&self, rng: &mut StdRng, config: &CorpusConfig, c: ExtConceptId) -> String {
        let primary = self.term.ekg.name(c);
        let roll: f64 = rng.gen();
        if roll < config.synonym_mention_rate {
            let syns: Vec<&str> = self.term.ekg.synonyms(c).collect();
            if !syns.is_empty() {
                return syns[rng.gen_range(0..syns.len())].to_string();
            }
        } else if roll < config.synonym_mention_rate + config.colloquial_mention_rate {
            // Colloquial rewrite of one word, if the name has one.
            let words: Vec<&str> = primary.split_whitespace().collect();
            if let Some(i) =
                words.iter().position(|w| medkb_snomed::vocab::colloquial_of(w).is_some())
            {
                let mut out: Vec<&str> = words.clone();
                out[i] = medkb_snomed::vocab::colloquial_of(words[i]).unwrap();
                return out.join(" ");
            }
        }
        primary.to_string()
    }
}

/// Precomputed latent-nearest-neighbour lists over the finding hierarchy.
///
/// The generator (part of the ground-truth world, not of any evaluated
/// method) uses true latent proximity to decide which findings a monograph
/// co-mentions — mirroring how real corpora reflect real semantics.
struct LatentNeighbors {
    index: std::collections::HashMap<ExtConceptId, Vec<ExtConceptId>>,
}

/// Finding counts up to this run the exact all-pairs kNN; larger worlds
/// switch to the graph-pruned variant. The committed 4k benchmark world
/// (~1.6k findings) and every test world stay on the exact path, so their
/// corpora are bit-identical to the pre-threshold builds.
const KNN_BRUTE_MAX: usize = 8_192;

impl LatentNeighbors {
    /// Latent kNN over the findings.
    ///
    /// Up to [`KNN_BRUTE_MAX`] findings: exact all-pairs scan, sharded
    /// across threads — O(F²·dim), which is fine at 4k-world scale but was
    /// the dominant superlinear cost of SNOMED-scale corpus generation
    /// (~54s of a 55s corpus build at 50k concepts, ~45min at 350k).
    ///
    /// Above the threshold: graph-pruned kNN. Finding latents are
    /// constructed top-down (child = parent + decaying noise, organ/
    /// condition/modifier vectors shared along `is_a`), so latent proximity
    /// tracks DAG proximity; the true nearest neighbours are overwhelmingly
    /// within two hops. Candidates are the 2-hop neighbourhood (parents,
    /// children, siblings, grandparents, uncles, grandchildren) capped at
    /// 512, scored with exact latent distances and the same (distance, id)
    /// tie-break — deterministic for a fixed world, O(F·b²) for branching
    /// factor b.
    fn build(term: &GeneratedTerminology, findings: &[ExtConceptId], k: usize) -> Self {
        if findings.len() > KNN_BRUTE_MAX {
            return Self::build_graph_pruned(term, findings, k);
        }
        let threads =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16);
        let chunk = findings.len().div_ceil(threads.max(1)).max(1);
        let shards: Vec<Vec<(ExtConceptId, Vec<ExtConceptId>)>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = findings
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move |_| {
                            part.iter()
                                .map(|&a| {
                                    let mut dists: Vec<(f64, ExtConceptId)> = findings
                                        .iter()
                                        .filter(|&&b| b != a)
                                        .map(|&b| (term.latent_distance(a, b), b))
                                        .collect();
                                    dists.sort_by(|x, y| {
                                        x.0.total_cmp(&y.0).then(x.1.cmp(&y.1))
                                    });
                                    let top: Vec<ExtConceptId> =
                                        dists.into_iter().take(k).map(|(_, b)| b).collect();
                                    (a, top)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("knn shard")).collect()
            })
            .expect("knn scope");
        let mut index = std::collections::HashMap::with_capacity(findings.len());
        for shard in shards {
            index.extend(shard);
        }
        Self { index }
    }

    /// Graph-pruned kNN for SNOMED-scale worlds: exact latent distances over
    /// a 2-hop `is_a` candidate neighbourhood instead of all pairs.
    fn build_graph_pruned(
        term: &GeneratedTerminology,
        findings: &[ExtConceptId],
        k: usize,
    ) -> Self {
        const CANDIDATE_CAP: usize = 512;
        let in_findings: std::collections::HashSet<ExtConceptId> =
            findings.iter().copied().collect();
        let threads =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16);
        let chunk = findings.len().div_ceil(threads.max(1)).max(1);
        let shards: Vec<Vec<(ExtConceptId, Vec<ExtConceptId>)>> =
            crossbeam::thread::scope(|scope| {
                let (ekg, in_findings) = (&term.ekg, &in_findings);
                let handles: Vec<_> = findings
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move |_| {
                            let mut seen = std::collections::HashSet::new();
                            part.iter()
                                .map(|&a| {
                                    seen.clear();
                                    seen.insert(a);
                                    let mut cand: Vec<ExtConceptId> = Vec::new();
                                    let push = |seen: &mut std::collections::HashSet<
                                        ExtConceptId,
                                    >,
                                                    cand: &mut Vec<ExtConceptId>,
                                                    c: ExtConceptId| {
                                        if cand.len() < CANDIDATE_CAP
                                            && in_findings.contains(&c)
                                            && seen.insert(c)
                                        {
                                            cand.push(c);
                                        }
                                    };
                                    for p in ekg.native_parents(a) {
                                        push(&mut seen, &mut cand, p);
                                        for s in ekg.native_children(p) {
                                            push(&mut seen, &mut cand, s);
                                        }
                                        for gp in ekg.native_parents(p) {
                                            push(&mut seen, &mut cand, gp);
                                            for u in ekg.native_children(gp) {
                                                push(&mut seen, &mut cand, u);
                                            }
                                        }
                                    }
                                    for c in ekg.native_children(a) {
                                        push(&mut seen, &mut cand, c);
                                        for gc in ekg.native_children(c) {
                                            push(&mut seen, &mut cand, gc);
                                        }
                                    }
                                    let mut dists: Vec<(f64, ExtConceptId)> = cand
                                        .into_iter()
                                        .map(|b| (term.latent_distance(a, b), b))
                                        .collect();
                                    dists.sort_by(|x, y| {
                                        x.0.total_cmp(&y.0).then(x.1.cmp(&y.1))
                                    });
                                    let top: Vec<ExtConceptId> =
                                        dists.into_iter().take(k).map(|(_, b)| b).collect();
                                    (a, top)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("knn shard")).collect()
            })
            .expect("knn scope");
        let mut index = std::collections::HashMap::with_capacity(findings.len());
        for shard in shards {
            index.extend(shard);
        }
        Self { index }
    }

    /// A random latent neighbour of `of` (falls back to `of` itself for
    /// isolated concepts).
    fn sample(&self, rng: &mut StdRng, of: ExtConceptId) -> ExtConceptId {
        match self.index.get(&of) {
            Some(list) if !list.is_empty() => list[rng.gen_range(0..list.len())],
            _ => of,
        }
    }
}

/// Cumulative-weight sampling table with binary search.
struct CumTable {
    items: Vec<ExtConceptId>,
    cum: Vec<f64>,
}

impl CumTable {
    fn build<F: Fn(ExtConceptId) -> f64>(items: &[ExtConceptId], weight: F) -> Self {
        let mut cum = Vec::with_capacity(items.len());
        let mut total = 0.0;
        for &c in items {
            total += weight(c).max(0.0);
            cum.push(total);
        }
        Self { items: items.to_vec(), cum }
    }

    fn sample(&self, rng: &mut StdRng) -> Option<ExtConceptId> {
        let total = *self.cum.last()?;
        if total <= 0.0 {
            return None;
        }
        let target = rng.gen::<f64>() * total;
        let idx = self.cum.partition_point(|&x| x < target);
        self.items.get(idx.min(self.items.len() - 1)).copied()
    }
}

/// Deterministically mangle ~60% of word types into a foreign dialect
/// (suffix shift). Short/function words survive, so the corpora still share
/// grammar, only the content vocabulary drifts.
fn dialect(word: &str) -> String {
    if word.len() < 4 || !word.chars().all(|c| c.is_alphabetic()) {
        return word.to_string();
    }
    let hash: u32 = word.bytes().fold(0u32, |h, b| h.wrapping_mul(31).wrapping_add(b as u32));
    if hash % 10 < 6 {
        format!("{word}ux")
    } else {
        word.to_string()
    }
}

fn sample_tag(rng: &mut StdRng) -> ContextTag {
    let total: f64 = TAG_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut target = rng.gen::<f64>() * total;
    for &(tag, w) in &TAG_WEIGHTS {
        target -= w;
        if target <= 0.0 {
            return tag;
        }
    }
    ContextTag::General
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (GeneratedTerminology, Oracle) {
        let t = GeneratedTerminology::generate(&SnomedConfig::tiny(51));
        let o = Oracle::derive(&t, 52);
        (t, o)
    }

    #[test]
    fn generates_requested_document_count() {
        let (t, o) = world();
        let c = CorpusGenerator::new(&t, &o).generate(&CorpusConfig::tiny(1));
        assert_eq!(c.len(), 120);
        assert!(c.sentence_count() >= 120 * 5);
        assert!(c.token_count() > c.sentence_count() * 4);
    }

    #[test]
    fn deterministic() {
        let (t, o) = world();
        let a = CorpusGenerator::new(&t, &o).generate(&CorpusConfig::tiny(2));
        let b = CorpusGenerator::new(&t, &o).generate(&CorpusConfig::tiny(2));
        assert_eq!(a.len(), b.len());
        let ra: Vec<String> = a.docs[0].sentences.iter().map(|s| a.render(s)).collect();
        let rb: Vec<String> = b.docs[0].sentences.iter().map(|s| b.render(s)).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn all_tags_appear() {
        let (t, o) = world();
        let c = CorpusGenerator::new(&t, &o).generate(&CorpusConfig::tiny(3));
        for tag in ContextTag::ALL {
            assert!(
                c.sentences().any(|s| s.tag == tag),
                "tag {tag:?} never generated"
            );
        }
    }

    #[test]
    fn treatment_sentences_mention_findings() {
        let (t, o) = world();
        let c = CorpusGenerator::new(&t, &o).generate(&CorpusConfig::tiny(4));
        // At least one treatment sentence should contain a finding name.
        let findings = t.of_hierarchy(Hierarchy::ClinicalFinding);
        let some_hit = c
            .sentences()
            .filter(|s| s.tag == ContextTag::Treatment)
            .take(200)
            .any(|s| {
                let text = c.render(s);
                findings.iter().take(300).any(|&f| text.contains(t.ekg.name(f)))
            });
        assert!(some_hit);
    }

    #[test]
    fn out_of_domain_has_low_concept_overlap() {
        let (t, _) = world();
        let ood = CorpusGenerator::out_of_domain(6, 60);
        // Short function words survive the dialect shift (both corpora
        // share grammar)…
        assert!(ood.vocab.get("the").is_some());
        assert!(ood.vocab.get("for").is_some());
        // …but in-domain concept *names* rarely occur as phrases in the
        // OOD corpus — the domain-shift the Embedding-pre-trained baseline
        // suffers from.
        let ood_text: Vec<String> =
            ood.docs.iter().flat_map(|d| d.sentences.iter().map(|s| ood.render(s))).collect();
        let findings = t.of_hierarchy(Hierarchy::ClinicalFinding);
        let sample: Vec<&str> =
            findings.iter().take(120).map(|&f| t.ekg.name(f)).filter(|n| n.contains(' ')).collect();
        let present = sample
            .iter()
            .filter(|name| ood_text.iter().any(|s| s.contains(*name)))
            .count();
        assert!(
            present * 5 < sample.len().max(1),
            "{present} of {} in-domain concept names appear in the OOD corpus",
            sample.len()
        );
    }

    #[test]
    fn cum_table_respects_zero_weights() {
        let items = vec![ExtConceptId::new(0), ExtConceptId::new(1)];
        let table = CumTable::build(&items, |c| if c.raw() == 0 { 0.0 } else { 1.0 });
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(table.sample(&mut rng), Some(ExtConceptId::new(1)));
        }
        let empty = CumTable::build(&[], |_| 1.0);
        assert_eq!(empty.sample(&mut rng), None);
    }
}
