//! Corpus data model: interned, context-tagged sentences.

use medkb_snomed::ContextTag;
use medkb_types::{StringInterner, TokenId};

/// One sentence: a context tag (which family of statement template produced
/// it) plus its interned tokens.
#[derive(Debug, Clone)]
pub struct Sentence {
    /// The semantic family of the sentence ("X treats Y" vs "X causes Y").
    pub tag: ContextTag,
    /// Interned tokens in order.
    pub tokens: Vec<TokenId>,
}

/// One document (a drug monograph in the in-domain corpus).
#[derive(Debug, Clone, Default)]
pub struct Document {
    /// Sentences in order.
    pub sentences: Vec<Sentence>,
}

/// A corpus: documents plus the shared token vocabulary.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The documents.
    pub docs: Vec<Document>,
    /// Shared token vocabulary.
    pub vocab: StringInterner<TokenId>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self { docs: Vec::new(), vocab: StringInterner::new() }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Total sentence count.
    pub fn sentence_count(&self) -> usize {
        self.docs.iter().map(|d| d.sentences.len()).sum()
    }

    /// Total token count.
    pub fn token_count(&self) -> usize {
        self.docs.iter().flat_map(|d| &d.sentences).map(|s| s.tokens.len()).sum()
    }

    /// Iterate over every sentence.
    pub fn sentences(&self) -> impl Iterator<Item = &Sentence> {
        self.docs.iter().flat_map(|d| d.sentences.iter())
    }

    /// Render a sentence back to text (for debugging and examples).
    pub fn render(&self, sentence: &Sentence) -> String {
        sentence
            .tokens
            .iter()
            .map(|&t| self.vocab.resolve(t))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl Default for Corpus {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_corpus() {
        let c = Corpus::new();
        assert!(c.is_empty());
        assert_eq!(c.sentence_count(), 0);
        assert_eq!(c.token_count(), 0);
    }

    #[test]
    fn render_roundtrips_tokens() {
        let mut c = Corpus::new();
        let tokens = vec![c.vocab.intern("aspirin"), c.vocab.intern("treats"), c.vocab.intern("fever")];
        let s = Sentence { tag: ContextTag::Treatment, tokens };
        c.docs.push(Document { sentences: vec![s] });
        let rendered = c.render(&c.docs[0].sentences[0]);
        assert_eq!(rendered, "aspirin treats fever");
        assert_eq!(c.sentence_count(), 1);
        assert_eq!(c.token_count(), 3);
    }
}
