//! Concept mention counting per context, and the tf-idf adjustment.
//!
//! §5.1 "Concept frequency": count how often each external concept name is
//! mentioned in the corpus, *per context*, then adjust for document
//! sparsity with tf-idf ("asthma is mentioned in 54 drug descriptions …
//! whereas lung cancer has only a handful"). Mentions are found with a
//! longest-match token trie over every registered name and synonym of every
//! concept.

use std::collections::HashMap;

use medkb_ekg::Ekg;
use medkb_snomed::oracle::N_TAGS;
use medkb_text::tokenize;
use medkb_types::{ExtConceptId, StringInterner, TokenId};

use crate::model::Corpus;

/// Metric names the mention-counting stage records (DESIGN.md §10).
pub mod obs_names {
    /// Wall time of one counting run (µs histogram).
    pub const COUNT_US: &str = "corpus.count_us";
    /// Documents scanned (counter).
    pub const DOCS_SCANNED: &str = "corpus.docs.scanned";
    /// Distinct concepts with at least one mention (counter).
    pub const CONCEPTS_MENTIONED: &str = "corpus.concepts.mentioned";
}

/// Direct (non-recursive) mention statistics of a corpus against a
/// terminology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MentionCounts {
    /// Direct mention count per concept per context tag.
    direct: HashMap<ExtConceptId, [u64; N_TAGS]>,
    /// Number of distinct documents mentioning each concept.
    doc_freq: HashMap<ExtConceptId, u32>,
    /// Total number of documents counted.
    n_docs: usize,
}

impl MentionCounts {
    /// Scan `corpus` for mentions of `ekg` concept names and synonyms.
    ///
    /// A mention is a longest token-trie match; overlapping shorter names
    /// do not double-count ("chronic kidney disease" counts once, not also
    /// as "kidney disease").
    pub fn count(corpus: &Corpus, ekg: &Ekg) -> Self {
        let trie = TokenTrie::build(ekg, &corpus.vocab);
        let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        let mut doc_freq: HashMap<ExtConceptId, u32> = HashMap::new();
        count_docs(&trie, &corpus.docs, &mut direct, &mut doc_freq);
        Self { direct, doc_freq, n_docs: corpus.len() }
    }

    /// Parallel [`MentionCounts::count`]: the document list is split into
    /// contiguous shards, each worker counts its shard into a private
    /// partial table, and the partials are merged in shard order.
    ///
    /// Counts are integer sums per (concept, tag) slot and documents are
    /// independent, so the merged totals equal the sequential totals
    /// exactly for any shard count ([`MentionCounts`] equality is
    /// value-based, so hash-map iteration order cannot leak through).
    pub fn count_with_threads(corpus: &Corpus, ekg: &Ekg, threads: usize) -> Self {
        Self::count_with_threads_obs(corpus, ekg, threads, None)
    }

    /// [`MentionCounts::count_with_threads`] with optional instrumentation:
    /// records the counting stage's wall time and volumes into `obs`
    /// (metric names in [`obs_names`]). `None` is exactly the plain call.
    pub fn count_with_threads_obs(
        corpus: &Corpus,
        ekg: &Ekg,
        threads: usize,
        obs: Option<&medkb_obs::Registry>,
    ) -> Self {
        let timer = obs.map(|reg| reg.latency(obs_names::COUNT_US));
        let out = {
            let _span = timer.as_deref().map(|h| h.time());
            Self::count_with_threads_inner(corpus, ekg, threads)
        };
        if let Some(reg) = obs {
            reg.counter(obs_names::DOCS_SCANNED).add(corpus.len() as u64);
            reg.counter(obs_names::CONCEPTS_MENTIONED).add(out.direct.len() as u64);
        }
        out
    }

    fn count_with_threads_inner(corpus: &Corpus, ekg: &Ekg, threads: usize) -> Self {
        if threads <= 1 || corpus.docs.len() < 2 {
            return Self::count(corpus, ekg);
        }
        // One worker's partial result: (per-tag direct counts, doc counts).
        type Partial = (HashMap<ExtConceptId, [u64; N_TAGS]>, HashMap<ExtConceptId, u32>);
        let trie = TokenTrie::build(ekg, &corpus.vocab);
        let shard = corpus.docs.len().div_ceil(threads).max(1);
        let partials: Vec<Partial> =
            crossbeam::thread::scope(|s| {
                let trie = &trie;
                let handles: Vec<_> = corpus
                    .docs
                    .chunks(shard)
                    .map(|docs| {
                        s.spawn(move |_| {
                            let mut direct = HashMap::new();
                            let mut doc_freq = HashMap::new();
                            count_docs(trie, docs, &mut direct, &mut doc_freq);
                            (direct, doc_freq)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("count worker")).collect()
            })
            .expect("count scope");
        let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        let mut doc_freq: HashMap<ExtConceptId, u32> = HashMap::new();
        for (part_direct, part_df) in partials {
            for (c, tags) in part_direct {
                let slot = direct.entry(c).or_insert([0; N_TAGS]);
                for (acc, add) in slot.iter_mut().zip(tags) {
                    *acc += add;
                }
            }
            for (c, df) in part_df {
                *doc_freq.entry(c).or_insert(0) += df;
            }
        }
        Self { direct, doc_freq, n_docs: corpus.len() }
    }

    /// Direct mention count of `concept` for a tag index.
    pub fn direct(&self, concept: ExtConceptId, tag_index: usize) -> u64 {
        self.direct.get(&concept).map_or(0, |a| a[tag_index])
    }

    /// Direct mention count summed over all tags.
    pub fn direct_total(&self, concept: ExtConceptId) -> u64 {
        self.direct.get(&concept).map_or(0, |a| a.iter().sum())
    }

    /// Document frequency of `concept`.
    pub fn doc_freq(&self, concept: ExtConceptId) -> u32 {
        self.doc_freq.get(&concept).copied().unwrap_or(0)
    }

    /// Number of documents counted.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Concepts with at least one mention.
    pub fn mentioned_concepts(&self) -> impl Iterator<Item = ExtConceptId> + '_ {
        self.direct.keys().copied()
    }

    /// The tf-idf-adjusted direct weight of `concept` for a tag: raw count
    /// scaled by `idf = ln(1 + N / (1 + df))`. Concepts concentrated in few
    /// documents are damped relative to broadly-mentioned ones, countering
    /// the specialty-drug bias the paper describes.
    pub fn tfidf(&self, concept: ExtConceptId, tag_index: usize) -> f64 {
        let tf = self.direct(concept, tag_index) as f64;
        if tf == 0.0 {
            return 0.0;
        }
        tf * self.idf(concept)
    }

    /// The idf factor of `concept`.
    pub fn idf(&self, concept: ExtConceptId) -> f64 {
        let df = f64::from(self.doc_freq(concept));
        (1.0 + self.n_docs as f64 / (1.0 + df)).ln()
    }

    /// Inject direct counts explicitly (used by the Figure 4 worked-example
    /// reproduction, where the paper fixes the counts).
    pub fn from_direct(
        direct: HashMap<ExtConceptId, [u64; N_TAGS]>,
        doc_freq: HashMap<ExtConceptId, u32>,
        n_docs: usize,
    ) -> Self {
        Self { direct, doc_freq, n_docs }
    }

    /// Incrementally count `docs` (about to be added to the corpus) into
    /// this table using a cached [`CountTrie`]. `self.n_docs` grows by
    /// `docs.len()`.
    ///
    /// The caller must ensure the trie is still valid for the corpus
    /// vocabulary ([`CountTrie::validate`]); under that contract the result
    /// is bit-identical to a fresh [`MentionCounts::count`] over the
    /// extended corpus.
    ///
    /// Returns the concepts whose rows were touched (delta ingestion's
    /// dirty-direct set for the frequency patch).
    pub fn add_docs(
        &mut self,
        trie: &mut CountTrie,
        docs: &[crate::model::Document],
    ) -> Vec<ExtConceptId> {
        let (direct, doc_freq) = trie.count_partial(docs);
        let mut touched: Vec<ExtConceptId> = direct.keys().copied().collect();
        for (c, tags) in direct {
            let slot = self.direct.entry(c).or_insert([0; N_TAGS]);
            for (acc, add) in slot.iter_mut().zip(tags) {
                *acc += add;
            }
        }
        for (c, df) in doc_freq {
            touched.push(c);
            *self.doc_freq.entry(c).or_insert(0) += df;
        }
        self.n_docs += docs.len();
        touched
    }

    /// Incrementally un-count `docs` (just removed from the corpus) from
    /// this table. Entries whose counts reach zero are deleted, so the
    /// result stays bit-identical to a fresh count (which never creates
    /// zero rows). Same trie-validity contract as
    /// [`MentionCounts::add_docs`]; `docs` must previously have been
    /// counted into `self`. Returns the touched concepts.
    pub fn remove_docs(
        &mut self,
        trie: &mut CountTrie,
        docs: &[crate::model::Document],
    ) -> Vec<ExtConceptId> {
        let (direct, doc_freq) = trie.count_partial(docs);
        let mut touched: Vec<ExtConceptId> = direct.keys().copied().collect();
        for (c, tags) in direct {
            let slot = self.direct.get_mut(&c).expect("removing uncounted doc mentions");
            for (acc, sub) in slot.iter_mut().zip(tags) {
                *acc -= sub;
            }
            if slot.iter().all(|&v| v == 0) {
                self.direct.remove(&c);
            }
        }
        for (c, df) in doc_freq {
            touched.push(c);
            let slot = self.doc_freq.get_mut(&c).expect("removing uncounted doc freq");
            *slot -= df;
            if *slot == 0 {
                self.doc_freq.remove(&c);
            }
        }
        self.n_docs -= docs.len();
        touched
    }

    /// The pre-optimization counting path, preserved verbatim for the
    /// ingestion benchmark baseline (and the equality pin below): a
    /// hash-map trie scanned with a per-sentence allocation. Produces
    /// exactly the same counts as [`MentionCounts::count`].
    pub fn count_reference(corpus: &Corpus, ekg: &Ekg) -> Self {
        let trie = ReferenceTrie::build(ekg, &corpus.vocab);
        let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
        let mut doc_freq: HashMap<ExtConceptId, u32> = HashMap::new();
        for doc in &corpus.docs {
            let mut seen_in_doc: std::collections::HashSet<ExtConceptId> =
                std::collections::HashSet::new();
            for sentence in &doc.sentences {
                for concept in trie.scan(&sentence.tokens) {
                    direct.entry(concept).or_insert([0; N_TAGS])[sentence.tag.index()] += 1;
                    seen_in_doc.insert(concept);
                }
            }
            for c in seen_in_doc {
                *doc_freq.entry(c).or_insert(0) += 1;
            }
        }
        Self { direct, doc_freq, n_docs: corpus.len() }
    }
}

/// A reusable mention-counting trie for incremental (delta) recounts.
///
/// Wraps the scanning [`TokenTrie`] together with the two facts needed to
/// decide whether a cached trie is still *equivalent to a fresh build*
/// after the corpus vocabulary grew:
///
/// * the vocabulary length at build time, and
/// * the set of name tokens that were **out-of-vocabulary** at build time
///   (the trie's insert abandons a phrase at its first OOV token, so a
///   phrase's walk can only change if exactly that token gets interned
///   later).
///
/// New vocabulary tokens that are not in the OOV set cannot appear in any
/// name phrase's reachable prefix, so extending the root array with
/// "no transition" slots reproduces the fresh build exactly.
#[derive(Debug)]
pub struct CountTrie {
    trie: TokenTrie,
    /// Lowercased name tokens that were absent from the vocabulary when
    /// the trie was built (first-OOV per phrase; later tokens of an
    /// abandoned phrase cannot affect the walk while the first stays OOV).
    oov: std::collections::HashSet<Box<str>>,
    /// Vocabulary length already checked against `oov`.
    vocab_len: usize,
}

impl CountTrie {
    /// Build the trie over every name and synonym of `ekg` against the
    /// current corpus vocabulary.
    pub fn build(ekg: &Ekg, vocab: &StringInterner<TokenId>) -> Self {
        let mut oov = std::collections::HashSet::new();
        let trie = TokenTrie::build_recording(ekg, vocab, Some(&mut oov));
        Self { trie, oov, vocab_len: vocab.len() }
    }

    /// Check that this trie still scans exactly like a fresh build over
    /// `vocab`: no token interned since the last check matches a name
    /// token that was OOV at build time. On success the check position is
    /// advanced; on failure the caller must rebuild the trie and recount
    /// from scratch.
    pub fn validate(&mut self, vocab: &StringInterner<TokenId>) -> bool {
        if !self.oov.is_empty() {
            for (_, s) in vocab.iter().skip(self.vocab_len) {
                if self.oov.contains(s) {
                    return false;
                }
            }
        }
        self.vocab_len = vocab.len();
        true
    }

    /// Count `docs` into fresh partial tables (used by the ± merges of
    /// [`MentionCounts::add_docs`] / [`MentionCounts::remove_docs`]).
    fn count_partial(
        &mut self,
        docs: &[crate::model::Document],
    ) -> (HashMap<ExtConceptId, [u64; N_TAGS]>, HashMap<ExtConceptId, u32>) {
        // Tokens interned after the build index past the root array; they
        // have no transitions, so grow it with explicit "none" slots.
        let max_tok = docs
            .iter()
            .flat_map(|d| &d.sentences)
            .flat_map(|s| &s.tokens)
            .map(|t| t.raw() as usize + 1)
            .max()
            .unwrap_or(0);
        if max_tok > self.trie.root.len() {
            self.trie.root.resize(max_tok, NO_NODE);
        }
        let mut direct = HashMap::new();
        let mut doc_freq = HashMap::new();
        count_docs(&self.trie, docs, &mut direct, &mut doc_freq);
        (direct, doc_freq)
    }
}

/// Count one run of documents into the given partial tables.
fn count_docs(
    trie: &TokenTrie,
    docs: &[crate::model::Document],
    direct: &mut HashMap<ExtConceptId, [u64; N_TAGS]>,
    doc_freq: &mut HashMap<ExtConceptId, u32>,
) {
    let mut seen_in_doc: std::collections::HashSet<ExtConceptId> =
        std::collections::HashSet::new();
    for doc in docs {
        seen_in_doc.clear();
        for sentence in &doc.sentences {
            trie.scan_into(&sentence.tokens, |concept| {
                direct.entry(concept).or_insert([0; N_TAGS])[sentence.tag.index()] += 1;
                seen_in_doc.insert(concept);
            });
        }
        for &c in &seen_in_doc {
            *doc_freq.entry(c).or_insert(0) += 1;
        }
    }
}

/// Sentinel for "no transition" in the root array.
const NO_NODE: u32 = u32::MAX;

/// Longest-match trie over token-id sequences, laid out for scanning: the
/// root level (hit once per sentence position) is a direct-indexed array
/// over the corpus vocabulary, deeper levels are token-sorted slices
/// searched by binary search. Matching semantics are identical to
/// [`ReferenceTrie`] — same longest match, same first-writer-wins terminal.
#[derive(Debug)]
struct TokenTrie {
    /// Vocab token id → first-level node, or [`NO_NODE`].
    root: Vec<u32>,
    nodes: Vec<TrieNode>,
}

#[derive(Debug, Default)]
struct TrieNode {
    /// Sorted by token id.
    children: Vec<(TokenId, u32)>,
    terminal: Option<ExtConceptId>,
}

/// FNV-1a — a fast, deterministic hasher for the short token keys of the
/// build-time vocabulary lookup (SipHash dominates the probe cost there).
#[derive(Default)]
struct Fnv(u64);

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }
}

type FnvMap<'a> = HashMap<&'a str, TokenId, std::hash::BuildHasherDefault<Fnv>>;

impl TokenTrie {
    fn build(ekg: &Ekg, vocab: &StringInterner<TokenId>) -> Self {
        Self::build_recording(ekg, vocab, None)
    }

    /// [`TokenTrie::build`], optionally recording the first
    /// out-of-vocabulary token of every abandoned phrase into `oov` (the
    /// [`CountTrie`] staleness set).
    fn build_recording(
        ekg: &Ekg,
        vocab: &StringInterner<TokenId>,
        mut oov: Option<&mut std::collections::HashSet<Box<str>>>,
    ) -> Self {
        let mut trie = Self { root: vec![NO_NODE; vocab.len()], nodes: Vec::new() };
        let lookup: FnvMap<'_> = vocab.iter().map(|(id, s)| (s, id)).collect();
        let mut buf = String::new();
        for c in ekg.concepts() {
            trie.insert(&lookup, ekg.name(c), c, &mut buf, oov.as_deref_mut());
            for syn in ekg.synonyms(c) {
                trie.insert(&lookup, syn, c, &mut buf, oov.as_deref_mut());
            }
        }
        trie
    }

    /// Insert `phrase` token by token. Tokens are lowercased into the
    /// reused `buf` (matching [`tokenize`] exactly) instead of allocating a
    /// token vector per phrase — building the trie over every name and
    /// synonym of a large terminology is the hot path of counting.
    fn insert(
        &mut self,
        vocab: &FnvMap<'_>,
        phrase: &str,
        concept: ExtConceptId,
        buf: &mut String,
        mut oov: Option<&mut std::collections::HashSet<Box<str>>>,
    ) {
        let mut node: Option<usize> = None;
        for (lo, hi) in medkb_text::token_spans(phrase) {
            buf.clear();
            let frag = &phrase[lo..hi];
            if frag.is_ascii() {
                buf.push_str(frag);
                buf.make_ascii_lowercase();
            } else {
                // Mirror `tokenize` exactly: `to_lowercase` can expand into
                // non-alphanumeric chars (`İ` → `i` + combining dot above),
                // which tokenize drops — keeping them here would produce a
                // token absent from the corpus vocabulary and silently
                // lose every mention of the phrase.
                for ch in frag.chars() {
                    buf.extend(ch.to_lowercase().filter(|c| c.is_alphanumeric()));
                }
                if buf.is_empty() {
                    continue;
                }
            }
            // A phrase containing a token absent from the corpus vocabulary
            // can never match; skip it entirely. The abandoning token is
            // what makes a cached trie stale if interned later.
            let Some(&tok) = vocab.get(buf.as_str()) else {
                if let Some(set) = oov.as_deref_mut() {
                    set.insert(buf.as_str().into());
                }
                return;
            };
            let next = match node {
                None => {
                    let slot = &mut self.root[tok.raw() as usize];
                    if *slot == NO_NODE {
                        *slot = self.nodes.len() as u32;
                        self.nodes.push(TrieNode::default());
                    }
                    *slot as usize
                }
                Some(n) => {
                    match self.nodes[n].children.binary_search_by_key(&tok, |&(t, _)| t) {
                        Ok(pos) => self.nodes[n].children[pos].1 as usize,
                        Err(pos) => {
                            let idx = self.nodes.len() as u32;
                            self.nodes.push(TrieNode::default());
                            self.nodes[n].children.insert(pos, (tok, idx));
                            idx as usize
                        }
                    }
                }
            };
            node = Some(next);
        }
        if let Some(n) = node {
            // First writer wins: primary names are inserted before synonyms,
            // and ambiguous synonyms should not steal mentions.
            self.nodes[n].terminal.get_or_insert(concept);
        }
    }

    fn scan_into(&self, tokens: &[TokenId], mut hit: impl FnMut(ExtConceptId)) {
        let mut i = 0;
        while i < tokens.len() {
            let first = self.root[tokens[i].raw() as usize];
            if first == NO_NODE {
                i += 1;
                continue;
            }
            let mut node = first as usize;
            let mut best = self.nodes[node].terminal.map(|c| (1usize, c));
            for (offset, tok) in tokens[i + 1..].iter().enumerate() {
                match self.nodes[node].children.binary_search_by_key(tok, |&(t, _)| t) {
                    Ok(pos) => {
                        node = self.nodes[node].children[pos].1 as usize;
                        if let Some(c) = self.nodes[node].terminal {
                            best = Some((offset + 2, c));
                        }
                    }
                    Err(_) => break,
                }
            }
            match best {
                Some((len, c)) => {
                    hit(c);
                    i += len;
                }
                None => i += 1,
            }
        }
    }
}

/// The pre-optimization trie (hash-map children at every level), kept as
/// the benchmark baseline behind [`MentionCounts::count_reference`].
struct ReferenceTrie {
    nodes: Vec<ReferenceNode>,
}

#[derive(Default)]
struct ReferenceNode {
    children: HashMap<TokenId, usize>,
    terminal: Option<ExtConceptId>,
}

impl ReferenceTrie {
    fn build(ekg: &Ekg, vocab: &StringInterner<TokenId>) -> Self {
        let mut trie = Self { nodes: vec![ReferenceNode::default()] };
        for c in ekg.concepts() {
            trie.insert(vocab, ekg.name(c), c);
            for syn in ekg.synonyms(c) {
                trie.insert(vocab, syn, c);
            }
        }
        trie
    }

    fn insert(&mut self, vocab: &StringInterner<TokenId>, phrase: &str, concept: ExtConceptId) {
        let mut node = 0usize;
        for word in tokenize(phrase) {
            let Some(tok) = vocab.get(&word) else { return };
            let next = match self.nodes[node].children.get(&tok) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(ReferenceNode::default());
                    self.nodes[node].children.insert(tok, n);
                    n
                }
            };
            node = next;
        }
        if node != 0 {
            self.nodes[node].terminal.get_or_insert(concept);
        }
    }

    fn scan(&self, tokens: &[TokenId]) -> Vec<ExtConceptId> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut node = 0usize;
            let mut best: Option<(usize, ExtConceptId)> = None;
            for (offset, tok) in tokens[i..].iter().enumerate() {
                match self.nodes[node].children.get(tok) {
                    Some(&n) => {
                        node = n;
                        if let Some(c) = self.nodes[node].terminal {
                            best = Some((offset + 1, c));
                        }
                    }
                    None => break,
                }
            }
            match best {
                Some((len, c)) => {
                    out.push(c);
                    i += len;
                }
                None => i += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Document, Sentence};
    use medkb_ekg::EkgBuilder;
    use medkb_snomed::ContextTag;

    fn fixture() -> (Corpus, Ekg, ExtConceptId, ExtConceptId) {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let kd = b.concept("kidney disease");
        let ckd = b.concept("chronic kidney disease");
        b.synonym(kd, "nephropathy");
        b.is_a(kd, root);
        b.is_a(ckd, kd);
        let ekg = b.build().unwrap();

        let mut corpus = Corpus::new();
        let sent = |text: &str, tag: ContextTag, corpus: &mut Corpus| Sentence {
            tag,
            tokens: tokenize(text).into_iter().map(|t| corpus.vocab.intern(&t)).collect(),
        };
        let s1 = sent("drug x treats kidney disease fast", ContextTag::Treatment, &mut corpus);
        let s2 = sent(
            "drug x may cause chronic kidney disease",
            ContextTag::Risk,
            &mut corpus,
        );
        let s3 = sent("nephropathy improved with drug x", ContextTag::Treatment, &mut corpus);
        corpus.docs.push(Document { sentences: vec![s1, s2] });
        corpus.docs.push(Document { sentences: vec![s3] });
        (corpus, ekg, kd, ckd)
    }

    #[test]
    fn counts_mentions_per_tag() {
        let (corpus, ekg, kd, ckd) = fixture();
        let counts = MentionCounts::count(&corpus, &ekg);
        assert_eq!(counts.direct(kd, ContextTag::Treatment.index()), 2); // name + synonym
        assert_eq!(counts.direct(kd, ContextTag::Risk.index()), 0);
        assert_eq!(counts.direct(ckd, ContextTag::Risk.index()), 1);
        assert_eq!(counts.direct_total(kd), 2);
    }

    #[test]
    fn longest_match_wins() {
        let (corpus, ekg, kd, ckd) = fixture();
        let counts = MentionCounts::count(&corpus, &ekg);
        // "chronic kidney disease" must not also count as "kidney disease".
        assert_eq!(counts.direct_total(ckd), 1);
        assert_eq!(counts.direct_total(kd), 2);
    }

    #[test]
    fn doc_freq_counts_documents_not_mentions() {
        let (corpus, ekg, kd, _) = fixture();
        let counts = MentionCounts::count(&corpus, &ekg);
        assert_eq!(counts.doc_freq(kd), 2);
        assert_eq!(counts.n_docs(), 2);
    }

    #[test]
    fn tfidf_zero_for_unmentioned() {
        let (corpus, ekg, _, _) = fixture();
        let counts = MentionCounts::count(&corpus, &ekg);
        let root = ekg.root();
        assert_eq!(counts.tfidf(root, 0), 0.0);
    }

    #[test]
    fn tfidf_damps_concentrated_mentions() {
        // Concept A: 4 mentions in 1 doc; concept B: 4 mentions in 4 docs.
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let a = b.concept("alpha finding");
        let bb = b.concept("beta finding");
        b.is_a(a, root);
        b.is_a(bb, root);
        let ekg = b.build().unwrap();
        let mut corpus = Corpus::new();
        let mk = |text: &str, corpus: &mut Corpus| Sentence {
            tag: ContextTag::Treatment,
            tokens: tokenize(text).into_iter().map(|t| corpus.vocab.intern(&t)).collect(),
        };
        let four_alpha: Vec<Sentence> =
            (0..4).map(|_| mk("alpha finding seen", &mut corpus)).collect();
        corpus.docs.push(Document { sentences: four_alpha });
        for _ in 0..4 {
            let s = mk("beta finding seen", &mut corpus);
            corpus.docs.push(Document { sentences: vec![s] });
        }
        let counts = MentionCounts::count(&corpus, &ekg);
        assert_eq!(counts.direct_total(a), 4);
        assert_eq!(counts.direct_total(bb), 4);
        assert!(
            counts.tfidf(a, 0) > counts.tfidf(bb, 0),
            "rarely-documented concept should carry higher idf weight"
        );
    }

    #[test]
    fn multichar_lowercase_names_count_like_the_reference() {
        // Fuzz regression (differential harness, seed 33): `İ` lowercases
        // to `i` + combining dot above; the optimized trie's inline
        // lowering kept the mark, produced a token absent from the corpus
        // vocabulary, and silently dropped every mention of the name.
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let ist = b.concept("İstanbul fever");
        b.is_a(ist, root);
        let ekg = b.build().unwrap();
        let mut corpus = Corpus::new();
        let tokens =
            tokenize("İstanbul fever reported").into_iter().map(|t| corpus.vocab.intern(&t));
        let s = Sentence { tag: ContextTag::Treatment, tokens: tokens.collect() };
        corpus.docs.push(Document { sentences: vec![s] });
        let fast = MentionCounts::count(&corpus, &ekg);
        assert_eq!(fast, MentionCounts::count_reference(&corpus, &ekg));
        assert_eq!(fast.direct_total(ist), 1);
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let (corpus, ekg, _, _) = fixture();
        let seq = MentionCounts::count(&corpus, &ekg);
        for threads in [1, 2, 4, 8] {
            let par = MentionCounts::count_with_threads(&corpus, &ekg, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_count_matches_on_many_docs() {
        // More documents than threads, multiple concepts per shard.
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let names = ["alpha finding", "beta finding", "gamma syndrome", "delta pain"];
        for (i, name) in names.iter().enumerate() {
            let c = b.concept(name);
            b.is_a(c, root);
            if i == 0 {
                b.synonym(c, "alpha condition");
            }
        }
        let ekg = b.build().unwrap();
        let mut corpus = Corpus::new();
        for i in 0..23usize {
            let text = format!(
                "{} seen with {}",
                names[i % names.len()],
                names[(i * 3 + 1) % names.len()]
            );
            let s = Sentence {
                tag: ContextTag::Treatment,
                tokens: tokenize(&text).into_iter().map(|t| corpus.vocab.intern(&t)).collect(),
            };
            corpus.docs.push(Document { sentences: vec![s] });
        }
        let seq = MentionCounts::count(&corpus, &ekg);
        for threads in [2, 4, 8] {
            assert_eq!(MentionCounts::count_with_threads(&corpus, &ekg, threads), seq);
        }
    }

    #[test]
    fn optimized_count_matches_reference() {
        let (corpus, ekg, _, _) = fixture();
        assert_eq!(MentionCounts::count(&corpus, &ekg), MentionCounts::count_reference(&corpus, &ekg));
        // And on a larger fixture with overlaps and synonyms.
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let kd = b.concept("kidney disease");
        let ckd = b.concept("chronic kidney disease");
        b.synonym(kd, "nephropathy");
        b.synonym(ckd, "ckd nephropathy");
        b.is_a(kd, root);
        b.is_a(ckd, kd);
        let ekg = b.build().unwrap();
        let mut corpus = Corpus::new();
        for i in 0..17usize {
            let text = match i % 4 {
                0 => "chronic kidney disease and kidney disease seen",
                1 => "nephropathy with ckd nephropathy noted",
                2 => "kidney kidney disease chronic",
                _ => "no mention at all here",
            };
            let s = Sentence {
                tag: if i % 2 == 0 { ContextTag::Treatment } else { ContextTag::Risk },
                tokens: tokenize(text).into_iter().map(|t| corpus.vocab.intern(&t)).collect(),
            };
            corpus.docs.push(Document { sentences: vec![s] });
        }
        assert_eq!(MentionCounts::count(&corpus, &ekg), MentionCounts::count_reference(&corpus, &ekg));
    }

    #[test]
    fn delta_add_remove_docs_match_fresh_count() {
        let (mut corpus, ekg, _, _) = fixture();
        let mut trie = CountTrie::build(&ekg, &corpus.vocab);
        let mut counts = MentionCounts::count(&corpus, &ekg);

        // Add a doc mentioning existing names plus a brand-new word.
        let s = Sentence {
            tag: ContextTag::Risk,
            tokens: tokenize("nephropathy worsened unexpectedly")
                .into_iter()
                .map(|t| corpus.vocab.intern(&t))
                .collect(),
        };
        let doc = Document { sentences: vec![s] };
        corpus.docs.push(doc.clone());
        assert!(trie.validate(&corpus.vocab), "benign new token must keep trie valid");
        counts.add_docs(&mut trie, std::slice::from_ref(&doc));
        assert_eq!(counts, MentionCounts::count(&corpus, &ekg));

        // Remove the first original document; zeroed rows must disappear.
        let removed = corpus.docs.remove(0);
        counts.remove_docs(&mut trie, std::slice::from_ref(&removed));
        assert_eq!(counts, MentionCounts::count(&corpus, &ekg));
    }

    #[test]
    fn interned_oov_name_token_invalidates_trie() {
        // "zygomatic arch pain" is registered but its tokens are OOV, so
        // the build abandons the phrase at "zygomatic". Interning that
        // token later must flag the trie stale (a fresh build would now
        // walk further).
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let x = b.concept("zygomatic arch pain");
        b.is_a(x, root);
        let ekg = b.build().unwrap();
        let mut corpus = Corpus::new();
        let s = Sentence {
            tag: ContextTag::General,
            tokens: tokenize("nothing here").into_iter().map(|t| corpus.vocab.intern(&t)).collect(),
        };
        corpus.docs.push(Document { sentences: vec![s] });
        let mut trie = CountTrie::build(&ekg, &corpus.vocab);
        assert!(trie.validate(&corpus.vocab));

        corpus.vocab.intern("zygomatic");
        assert!(!trie.validate(&corpus.vocab));
    }

    #[test]
    fn phrase_with_oov_token_never_matches() {
        let mut b = EkgBuilder::new();
        let root = b.concept("root");
        let x = b.concept("zygomatic arch pain");
        b.is_a(x, root);
        let ekg = b.build().unwrap();
        let mut corpus = Corpus::new();
        let s = Sentence {
            tag: ContextTag::General,
            tokens: tokenize("nothing here").into_iter().map(|t| corpus.vocab.intern(&t)).collect(),
        };
        corpus.docs.push(Document { sentences: vec![s] });
        let counts = MentionCounts::count(&corpus, &ekg);
        assert_eq!(counts.direct_total(x), 0);
    }
}
