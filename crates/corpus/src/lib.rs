//! The document corpus substrate.
//!
//! §5.1: "we assume that the KB is curated based on a document corpus, and
//! we count the number of times that each external concept name is
//! mentioned within this corpus", differentiated by context and adjusted
//! with tf-idf. The paper's corpus is proprietary; this crate generates a
//! synthetic drug-monograph corpus whose statistics are driven by the
//! ground-truth oracle (popularity × context affinity), so that corpus-based
//! signals genuinely carry the information the methods try to recover.
//!
//! * [`model`] — interned documents of context-tagged sentences.
//! * [`gen`] — the monograph generator (in-domain) and an out-of-domain
//!   corpus for the *Embedding-pre-trained* baseline.
//! * [`counts`] — concept mention counting per context tag (token-trie
//!   phrase scan) and the tf-idf adjustment.

#![warn(missing_docs)]

pub mod counts;
pub mod gen;
pub mod model;
pub mod stats;

pub use counts::{CountTrie, MentionCounts};
pub use gen::{CorpusConfig, CorpusGenerator};
pub use model::{Corpus, Document, Sentence};
pub use stats::CorpusStats;
