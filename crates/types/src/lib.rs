//! Shared foundation types for the `medkb` workspace.
//!
//! Every crate in the workspace speaks in terms of the small, `Copy`
//! identifier types defined here rather than passing strings around. Names
//! are interned once (see [`StringInterner`]) and all hot-path data
//! structures are dense vectors indexed by id (see [`IdVec`]), following the
//! usual database-engine idiom of resolving symbols at the boundary.
//!
//! The identifier namespaces mirror the paper's vocabulary:
//!
//! * [`ExtConceptId`] — a concept in the *external knowledge source*
//!   (SNOMED CT in the paper); the paper calls these "external concepts".
//! * [`OntoConceptId`] / [`RelationshipId`] — concepts and relationships of
//!   the *domain ontology* (the TBox of the medical KB).
//! * [`ContextId`] — a `(domain, relationship, range)` triple; the unit of
//!   contextual information threaded through the whole system.
//! * [`InstanceId`] — a row of instance data in the KB (the ABox).
//! * [`DocId`] / [`TokenId`] — document corpus coordinates.

#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod idvec;
pub mod intern;
pub mod validation;

pub use error::{MedKbError, Result};
pub use ids::{
    ContextId, DocId, ExtConceptId, Id, InstanceId, OntoConceptId, RelationshipId, TokenId,
};
pub use idvec::IdVec;
pub use intern::StringInterner;
pub use validation::{Defect, ValidationReport};
