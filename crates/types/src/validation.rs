//! Multi-defect validation reporting for loaders.
//!
//! Every TSV/RF2 loader in the workspace validates the *whole* document
//! before giving up: a malformed export with twelve broken rows reports all
//! twelve (with document names and line numbers), not just the first. The
//! loaders collect defects into a [`ValidationReport`] and convert a
//! non-empty report into [`crate::MedKbError::Validation`] at the end of
//! the parse, so callers keep the plain `Result<T>` interface.

use std::fmt;

use crate::error::{MedKbError, Result};

/// One concrete problem found while validating an input document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Defect {
    /// Which document the defect was found in (e.g. `"concepts"`,
    /// `"triples"`).
    pub document: &'static str,
    /// 1-based line number, when the defect is tied to a specific line.
    pub line: Option<usize>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{} line {}: {}", self.document, line, self.message),
            None => write!(f, "{}: {}", self.document, self.message),
        }
    }
}

/// An accumulating list of [`Defect`]s for one load operation.
///
/// ```
/// use medkb_types::{ValidationReport, MedKbError};
///
/// let mut report = ValidationReport::new();
/// report.defect("concepts", Some(3), "bad id \"x\"");
/// report.defect("concepts", Some(7), "empty name");
/// let err = report.into_result().unwrap_err();
/// assert!(matches!(err, MedKbError::Validation(r) if r.len() == 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationReport {
    defects: Vec<Defect>,
}

impl ValidationReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one defect.
    pub fn defect(&mut self, document: &'static str, line: Option<usize>, message: impl Into<String>) {
        self.defects.push(Defect { document, line, message: message.into() });
    }

    /// Whether any defect has been recorded.
    pub fn is_empty(&self) -> bool {
        self.defects.is_empty()
    }

    /// Number of recorded defects.
    pub fn len(&self) -> usize {
        self.defects.len()
    }

    /// All recorded defects, in discovery order.
    pub fn defects(&self) -> &[Defect] {
        &self.defects
    }

    /// `Ok(())` when empty, otherwise [`MedKbError::Validation`] carrying
    /// every recorded defect.
    pub fn into_result(self) -> Result<()> {
        if self.defects.is_empty() {
            Ok(())
        } else {
            Err(MedKbError::Validation(self))
        }
    }

    /// Like [`ValidationReport::into_result`] but yields `value` on success.
    pub fn into_result_with<T>(self, value: T) -> Result<T> {
        self.into_result().map(|()| value)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        /// Cap on the defects spelled out in `Display`; the rest are
        /// summarized so a million-row broken export cannot flood a log
        /// line (the full list stays available via [`ValidationReport::defects`]).
        const SHOWN: usize = 8;
        write!(f, "{} defect(s): ", self.defects.len())?;
        for (i, d) in self.defects.iter().take(SHOWN).enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{d}")?;
        }
        if self.defects.len() > SHOWN {
            write!(f, "; … and {} more", self.defects.len() - SHOWN)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_ok() {
        assert!(ValidationReport::new().into_result().is_ok());
        assert_eq!(ValidationReport::new().into_result_with(42).unwrap(), 42);
    }

    #[test]
    fn collects_all_defects_in_order() {
        let mut r = ValidationReport::new();
        r.defect("concepts", Some(1), "bad id");
        r.defect("relationships", None, "truncated");
        assert_eq!(r.len(), 2);
        assert_eq!(r.defects()[0].to_string(), "concepts line 1: bad id");
        assert_eq!(r.defects()[1].to_string(), "relationships: truncated");
    }

    #[test]
    fn display_caps_long_reports() {
        let mut r = ValidationReport::new();
        for i in 0..12 {
            r.defect("doc", Some(i + 1), "bad");
        }
        let s = r.to_string();
        assert!(s.starts_with("12 defect(s): "));
        assert!(s.ends_with("… and 4 more"));
    }

    #[test]
    fn into_result_carries_report() {
        let mut r = ValidationReport::new();
        r.defect("doc", Some(2), "oops");
        match r.into_result().unwrap_err() {
            MedKbError::Validation(rep) => {
                assert_eq!(rep.len(), 1);
                assert_eq!(rep.defects()[0].line, Some(2));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
