//! String interning keyed by a typed id namespace.

use std::collections::HashMap;
use std::marker::PhantomData;

use crate::ids::Id;

/// A string interner producing ids of a single namespace `I`.
///
/// Interning is append-only: once a string is assigned an id, the id is
/// stable for the lifetime of the interner. Lookups by string are O(1)
/// expected; lookups by id are a vector index.
///
/// ```
/// use medkb_types::{StringInterner, TokenId};
///
/// let mut interner: StringInterner<TokenId> = StringInterner::new();
/// let fever = interner.intern("fever");
/// assert_eq!(interner.intern("fever"), fever);
/// assert_eq!(interner.resolve(fever), "fever");
/// assert_eq!(interner.get("chills"), None);
/// ```
#[derive(Debug, Clone)]
pub struct StringInterner<I: Id> {
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, I>,
    _marker: PhantomData<I>,
}

impl<I: Id> Default for StringInterner<I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Id> StringInterner<I> {
    /// An empty interner.
    pub fn new() -> Self {
        Self { strings: Vec::new(), index: HashMap::new(), _marker: PhantomData }
    }

    /// An empty interner with capacity for `n` strings.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            strings: Vec::with_capacity(n),
            index: HashMap::with_capacity(n),
            _marker: PhantomData,
        }
    }

    /// Intern `s`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, s: &str) -> I {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = I::from_usize(self.strings.len());
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, id);
        id
    }

    /// The id of `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<I> {
        self.index.get(s).copied()
    }

    /// The string behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: I) -> &str {
        &self.strings[id.as_usize()]
    }

    /// The string behind `id`, or `None` for a foreign id.
    pub fn try_resolve(&self, id: I) -> Option<&str> {
        self.strings.get(id.as_usize()).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (I::from_usize(i), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ExtConceptId, TokenId};
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i: StringInterner<TokenId> = StringInterner::new();
        let a = i.intern("aspirin");
        let b = i.intern("aspirin");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let mut i: StringInterner<TokenId> = StringInterner::new();
        let a = i.intern("fever");
        let b = i.intern("headache");
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "fever");
        assert_eq!(i.resolve(b), "headache");
    }

    #[test]
    fn get_does_not_intern() {
        let i: StringInterner<TokenId> = StringInterner::new();
        assert_eq!(i.get("nope"), None);
        assert!(i.is_empty());
    }

    #[test]
    fn try_resolve_foreign_id_is_none() {
        let i: StringInterner<ExtConceptId> = StringInterner::new();
        assert_eq!(i.try_resolve(ExtConceptId::new(9)), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i: StringInterner<TokenId> = StringInterner::new();
        i.intern("a");
        i.intern("b");
        i.intern("c");
        let collected: Vec<_> = i.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(words in proptest::collection::vec("[a-z]{1,12}", 0..64)) {
            let mut i: StringInterner<TokenId> = StringInterner::new();
            let ids: Vec<_> = words.iter().map(|w| i.intern(w)).collect();
            for (w, id) in words.iter().zip(&ids) {
                prop_assert_eq!(i.resolve(*id), w.as_str());
                prop_assert_eq!(i.get(w), Some(*id));
            }
            // Ids are dense: max id + 1 == number of distinct words.
            let distinct: std::collections::HashSet<_> = words.iter().collect();
            prop_assert_eq!(i.len(), distinct.len());
        }
    }
}
