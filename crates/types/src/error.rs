//! The workspace-wide error type.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, MedKbError>;

/// Errors surfaced by the `medkb` crates.
///
/// The variants are deliberately coarse: downstream code either recovers by
/// relaxing its request (e.g. an unmapped query term triggers query
/// relaxation, which is the whole point of the paper) or reports the error
/// to the operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MedKbError {
    /// A name could not be resolved in the referenced namespace.
    NotFound {
        /// Namespace the lookup ran against (e.g. `"external concept"`).
        what: &'static str,
        /// The key that failed to resolve.
        key: String,
    },
    /// The external knowledge source is not a rooted DAG as required by §2.2.
    CycleDetected {
        /// A human-readable witness of the cycle.
        detail: String,
    },
    /// A graph that must have exactly one root has zero or several.
    InvalidRoot {
        /// Number of roots found.
        roots: usize,
    },
    /// An argument violated a documented precondition.
    InvalidArgument {
        /// Description of the violation.
        detail: String,
    },
    /// A serialized artifact could not be decoded.
    Corrupt {
        /// Description of the corruption.
        detail: String,
    },
    /// An input document failed validation; the report lists **every**
    /// defect found (document, line, message), not just the first.
    Validation(crate::validation::ValidationReport),
    /// A serving layer shed the request to protect itself (admission bound
    /// exceeded, per-query deadline blown). Deliberately distinct from
    /// [`MedKbError::NotFound`]: a shed query *might* have answers — the
    /// caller should retry or back off, never treat it as "no results".
    Overloaded {
        /// What was exhausted (in-flight bound, deadline, …).
        detail: String,
    },
}

impl MedKbError {
    /// Shorthand for [`MedKbError::NotFound`].
    pub fn not_found(what: &'static str, key: impl Into<String>) -> Self {
        Self::NotFound { what, key: key.into() }
    }

    /// Shorthand for [`MedKbError::InvalidArgument`].
    pub fn invalid(detail: impl Into<String>) -> Self {
        Self::InvalidArgument { detail: detail.into() }
    }

    /// Shorthand for [`MedKbError::Overloaded`].
    pub fn overloaded(detail: impl Into<String>) -> Self {
        Self::Overloaded { detail: detail.into() }
    }
}

impl fmt::Display for MedKbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotFound { what, key } => write!(f, "{what} not found: {key:?}"),
            Self::CycleDetected { detail } => {
                write!(f, "external knowledge source contains a cycle: {detail}")
            }
            Self::InvalidRoot { roots } => {
                write!(f, "expected exactly one root concept, found {roots}")
            }
            Self::InvalidArgument { detail } => write!(f, "invalid argument: {detail}"),
            Self::Corrupt { detail } => write!(f, "corrupt artifact: {detail}"),
            Self::Validation(report) => write!(f, "input validation failed: {report}"),
            Self::Overloaded { detail } => write!(f, "request shed under load: {detail}"),
        }
    }
}

impl std::error::Error for MedKbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_not_found() {
        let e = MedKbError::not_found("external concept", "pyelectasia");
        assert_eq!(e.to_string(), "external concept not found: \"pyelectasia\"");
    }

    #[test]
    fn display_invalid_root() {
        assert_eq!(
            MedKbError::InvalidRoot { roots: 3 }.to_string(),
            "expected exactly one root concept, found 3"
        );
    }

    #[test]
    fn overloaded_is_distinct_from_not_found() {
        let shed = MedKbError::overloaded("64 requests in flight (limit 64)");
        assert!(matches!(shed, MedKbError::Overloaded { .. }));
        assert!(!matches!(shed, MedKbError::NotFound { .. }));
        assert_eq!(
            shed.to_string(),
            "request shed under load: 64 requests in flight (limit 64)"
        );
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(MedKbError::invalid("k must be > 0"));
        assert!(e.to_string().contains("k must be > 0"));
    }
}
