//! Typed, `Copy` identifier newtypes.
//!
//! All ids are thin wrappers around `u32`, which is large enough for every
//! artifact this workspace generates (SNOMED CT itself has ~350k concepts)
//! while keeping adjacency lists and candidate heaps compact.

use std::fmt;

/// Common behaviour of all identifier newtypes.
///
/// The trait exists so generic containers such as [`crate::IdVec`] and the
/// interner can be reused across namespaces without erasing which namespace
/// an index belongs to.
pub trait Id: Copy + Eq + Ord + std::hash::Hash + fmt::Debug + 'static {
    /// Construct an id from a dense index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    fn from_usize(index: usize) -> Self;

    /// The dense index this id wraps.
    fn as_usize(self) -> usize;

    /// The raw `u32` representation.
    fn as_u32(self) -> u32;
}

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Construct from a raw `u32`.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl Id for $name {
            #[inline]
            fn from_usize(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index exceeds u32::MAX"))
            }

            #[inline]
            fn as_usize(self) -> usize {
                self.0 as usize
            }

            #[inline]
            fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A concept in the external knowledge source (e.g. SNOMED CT).
    ExtConceptId,
    "ext:"
);
define_id!(
    /// A concept of the domain ontology (TBox), e.g. `Finding`.
    OntoConceptId,
    "onto:"
);
define_id!(
    /// A relationship (role) of the domain ontology, e.g. `hasFinding`.
    RelationshipId,
    "rel:"
);
define_id!(
    /// A `(domain concept, relationship, range concept)` triple; the paper's
    /// notion of *context*, e.g. `Indication-hasFinding-Finding`.
    ContextId,
    "ctx:"
);
define_id!(
    /// An instance (ABox row) of the knowledge base, e.g. the finding
    /// `"fever"`.
    InstanceId,
    "inst:"
);
define_id!(
    /// A document of the curation corpus.
    DocId,
    "doc:"
);
define_id!(
    /// An interned token of the corpus vocabulary.
    TokenId,
    "tok:"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let id = ExtConceptId::from_usize(42);
        assert_eq!(id.as_usize(), 42);
        assert_eq!(id.as_u32(), 42);
        assert_eq!(id, ExtConceptId::new(42));
    }

    #[test]
    fn debug_and_display_carry_namespace_prefix() {
        assert_eq!(format!("{:?}", OntoConceptId::new(7)), "onto:7");
        assert_eq!(format!("{}", ContextId::new(3)), "ctx:3");
        assert_eq!(format!("{}", TokenId::new(0)), "tok:0");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(InstanceId::new(1) < InstanceId::new(2));
        let mut v = vec![DocId::new(5), DocId::new(1), DocId::new(3)];
        v.sort();
        assert_eq!(v, vec![DocId::new(1), DocId::new(3), DocId::new(5)]);
    }

    #[test]
    #[should_panic(expected = "id index exceeds u32::MAX")]
    fn from_usize_overflow_panics() {
        let _ = ExtConceptId::from_usize(u32::MAX as usize + 1);
    }
}
