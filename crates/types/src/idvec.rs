//! Dense vectors indexed by typed ids.

use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

use crate::ids::Id;

/// A `Vec<T>` that can only be indexed by ids of namespace `I`.
///
/// This is the storage idiom used throughout the workspace: symbols are
/// resolved to dense ids at the boundary, after which per-entity attributes
/// (frequencies, depths, flags, adjacency offsets, …) live in flat vectors.
///
/// ```
/// use medkb_types::{IdVec, ExtConceptId, Id};
///
/// let mut depths: IdVec<ExtConceptId, u32> = IdVec::new();
/// let root = depths.push(0);
/// let child = depths.push(1);
/// assert_eq!(depths[root], 0);
/// assert_eq!(depths[child], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdVec<I: Id, T> {
    items: Vec<T>,
    _marker: PhantomData<I>,
}

impl<I: Id, T> Default for IdVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: Id, T> IdVec<I, T> {
    /// An empty vector.
    pub fn new() -> Self {
        Self { items: Vec::new(), _marker: PhantomData }
    }

    /// An empty vector with capacity for `n` items.
    pub fn with_capacity(n: usize) -> Self {
        Self { items: Vec::with_capacity(n), _marker: PhantomData }
    }

    /// A vector of `n` copies of `value`.
    pub fn filled(value: T, n: usize) -> Self
    where
        T: Clone,
    {
        Self { items: vec![value; n], _marker: PhantomData }
    }

    /// Append `value`, returning its id.
    pub fn push(&mut self, value: T) -> I {
        let id = I::from_usize(self.items.len());
        self.items.push(value);
        id
    }

    /// The element behind `id`, or `None` if out of range.
    pub fn get(&self, id: I) -> Option<&T> {
        self.items.get(id.as_usize())
    }

    /// Mutable access to the element behind `id`.
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        self.items.get_mut(id.as_usize())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `id` indexes into this vector.
    pub fn contains_id(&self, id: I) -> bool {
        id.as_usize() < self.items.len()
    }

    /// Iterate over `(id, &item)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.items.iter().enumerate().map(|(i, t)| (I::from_usize(i), t))
    }

    /// Iterate over `(id, &mut item)` pairs in id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut T)> {
        self.items.iter_mut().enumerate().map(|(i, t)| (I::from_usize(i), t))
    }

    /// Iterate over all ids.
    pub fn ids(&self) -> impl Iterator<Item = I> {
        (0..self.items.len()).map(I::from_usize)
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Consume into the underlying `Vec`.
    pub fn into_inner(self) -> Vec<T> {
        self.items
    }
}

impl<I: Id, T> Index<I> for IdVec<I, T> {
    type Output = T;

    fn index(&self, id: I) -> &T {
        &self.items[id.as_usize()]
    }
}

impl<I: Id, T> IndexMut<I> for IdVec<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.items[id.as_usize()]
    }
}

impl<I: Id, T> FromIterator<T> for IdVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self { items: iter.into_iter().collect(), _marker: PhantomData }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::InstanceId;
    use proptest::prelude::*;

    #[test]
    fn push_returns_dense_ids() {
        let mut v: IdVec<InstanceId, &str> = IdVec::new();
        let a = v.push("fever");
        let b = v.push("chills");
        assert_eq!(a.as_usize(), 0);
        assert_eq!(b.as_usize(), 1);
        assert_eq!(v[a], "fever");
        assert_eq!(v[b], "chills");
    }

    #[test]
    fn filled_initializes_every_slot() {
        let v: IdVec<InstanceId, f64> = IdVec::filled(1.5, 4);
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|(_, &x)| x == 1.5));
    }

    #[test]
    fn get_out_of_range_is_none() {
        let v: IdVec<InstanceId, u8> = IdVec::new();
        assert_eq!(v.get(InstanceId::new(0)), None);
        assert!(!v.contains_id(InstanceId::new(0)));
    }

    #[test]
    fn iter_mut_allows_in_place_update() {
        let mut v: IdVec<InstanceId, u32> = IdVec::filled(1, 3);
        for (_, x) in v.iter_mut() {
            *x *= 10;
        }
        assert_eq!(v.as_slice(), &[10, 10, 10]);
    }

    proptest! {
        #[test]
        fn prop_ids_cover_all_pushes(values in proptest::collection::vec(any::<u16>(), 0..128)) {
            let mut v: IdVec<InstanceId, u16> = IdVec::new();
            let ids: Vec<_> = values.iter().map(|&x| v.push(x)).collect();
            prop_assert_eq!(v.len(), values.len());
            for (id, expect) in ids.iter().zip(&values) {
                prop_assert_eq!(v[*id], *expect);
            }
            let roundtrip: Vec<_> = v.ids().map(|id| v[id]).collect();
            prop_assert_eq!(roundtrip, values);
        }
    }
}
