//! Synthetic SNOMED CT-like terminology and the generated *MED* world.
//!
//! SNOMED CT is license-gated and the paper's *MED* knowledge base is
//! proprietary, so this crate generates faithful synthetic stand-ins (see
//! DESIGN.md §2 for the substitution argument):
//!
//! * [`vocab`] — deterministic medical-ish name synthesis (findings,
//!   drugs, organisms, body structures, procedures), with synonym and
//!   abbreviation variants and deliberate *antonym traps* ("hyper…" vs
//!   "hypo…") that are taxonomic siblings yet semantic opposites — the
//!   paper's "psychogenic fever"/"hypothermia" pitfall.
//! * [`generator`] — builds a rooted multi-parent DAG with SNOMED-shaped
//!   top-level hierarchies, configurable size/depth/fan-out.
//! * [`oracle`] — the latent ground truth that replaces the paper's 20
//!   SMEs: per-concept latent vectors, per-context affinities, and a graded
//!   relevance judgment combining extension overlap (directional), latent
//!   proximity (sibling relatedness), and context affinity.
//! * [`world`] — assembles the full experimental world: the terminology,
//!   the MED KB with perturbed instance names (driving Table 1's
//!   EXACT/EDIT/EMBEDDING shape), relation triples, and the gold mapping.
//! * [`figures`] — exact hand-built fragments of Figures 4, 5 and 6 with
//!   the paper's worked numbers.
//! * [`rf2`] — an RF2-flavoured TSV exchange format for terminologies.
//! * [`go`] — a Gene-Ontology-flavoured second terminology (the paper's
//!   §1 names GO as another usable knowledge source), proving the stack is
//!   terminology-agnostic.

#![warn(missing_docs)]

pub mod config;
pub mod figures;
pub mod generator;
pub mod go;
pub mod oracle;
pub mod rf2;
pub mod vocab;
pub mod world;

pub use config::{SnomedConfig, WorldConfig};
pub use generator::{ConceptMeta, GeneratedTerminology, Hierarchy};
pub use oracle::{ContextTag, Oracle};
pub use world::{InstanceOrigin, MedWorld, NameShape};
