//! Configuration for terminology and world generation.

/// Configuration of the synthetic SNOMED-like terminology generator.
#[derive(Debug, Clone)]
pub struct SnomedConfig {
    /// RNG seed; the same seed always yields the same terminology.
    pub seed: u64,
    /// Approximate number of concepts to generate (including the root and
    /// hierarchy heads). The generator may overshoot by a few concepts to
    /// close antonym pairs.
    pub concepts: usize,
    /// Probability that a non-head concept gets a second parent within its
    /// hierarchy (SNOMED is a multi-parent DAG; ~0.25 of concepts have >1
    /// parent).
    pub multi_parent_rate: f64,
    /// Expected synonyms per concept (each drawn independently).
    pub synonym_rate: f64,
    /// Probability that a finding concept spawns an antonym-trap sibling.
    pub antonym_rate: f64,
    /// Maximum hierarchy depth below the root.
    pub max_depth: u32,
}

impl Default for SnomedConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_0001,
            concepts: 12_000,
            multi_parent_rate: 0.22,
            synonym_rate: 0.8,
            antonym_rate: 0.06,
            max_depth: 14,
        }
    }
}

impl SnomedConfig {
    /// A small configuration for unit tests (fast, still multi-level).
    pub fn tiny(seed: u64) -> Self {
        Self { seed, concepts: 600, max_depth: 8, ..Self::default() }
    }
}

/// Configuration of the generated MED world (KB + gold data) on top of a
/// terminology.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Terminology generation parameters.
    pub snomed: SnomedConfig,
    /// RNG seed for the world layer (instances, triples, perturbations).
    pub seed: u64,
    /// Number of finding-flavoured KB instances (mapped from finding
    /// concepts).
    pub finding_instances: usize,
    /// Number of drug KB instances.
    pub drug_instances: usize,
    /// Fraction of instances whose name is copied verbatim from the
    /// concept's primary name or a registered synonym (EXACT-matchable).
    pub exact_name_rate: f64,
    /// Fraction with a small typo (≤ 2 edits; EDIT-matchable).
    pub typo_name_rate: f64,
    /// Fraction reworded in ways only embeddings recover (word reorder,
    /// near-synonym word swap not registered in the terminology).
    pub reword_name_rate: f64,
    // The remainder (1 - exact - typo - reword) are KB-only instances with
    // no counterpart in the terminology (unmappable traps).
    /// Indications per drug (expected).
    pub indications_per_drug: f64,
    /// Risks per drug (expected).
    pub risks_per_drug: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            snomed: SnomedConfig::default(),
            seed: 0x5EED_0002,
            finding_instances: 2_500,
            drug_instances: 700,
            exact_name_rate: 0.83,
            typo_name_rate: 0.05,
            reword_name_rate: 0.08,
            indications_per_drug: 2.5,
            risks_per_drug: 3.0,
        }
    }
}

impl WorldConfig {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            snomed: SnomedConfig::tiny(seed ^ 0xABCD),
            seed,
            finding_instances: 160,
            drug_instances: 50,
            ..Self::default()
        }
    }

    /// Fraction of instances that are deliberately unmappable.
    pub fn unmappable_rate(&self) -> f64 {
        (1.0 - self.exact_name_rate - self.typo_name_rate - self.reword_name_rate).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rates_sum_below_one() {
        let c = WorldConfig::default();
        assert!(c.exact_name_rate + c.typo_name_rate + c.reword_name_rate < 1.0);
        assert!(c.unmappable_rate() > 0.0);
    }

    #[test]
    fn tiny_is_smaller() {
        let t = WorldConfig::tiny(1);
        assert!(t.finding_instances < WorldConfig::default().finding_instances);
        assert!(t.snomed.concepts < SnomedConfig::default().concepts);
    }
}
