//! The ground-truth relevance oracle.
//!
//! The paper's precision/recall numbers come from 20 Subject Matter Experts
//! judging whether relaxed concepts are semantically related to a query
//! term in its context (§7.1). SME access is people-gated, so the synthetic
//! world carries a generative oracle instead (DESIGN.md §2). Its judgment
//! combines three ingredients none of the evaluated methods can see
//! directly:
//!
//! 1. **Extension overlap** (directional): the fraction of a candidate's
//!    leaf extension that lies inside the query's extension. A descendant
//!    of the query scores 1 (every instance of it *is* an instance of the
//!    query); a far ancestor scores low (most of its content is
//!    unrelated) — this is the semantic truth behind the paper's Eq. 4
//!    asymmetry (Figure 6).
//! 2. **Latent proximity**: generator-assigned latent vectors capture
//!    sibling relatedness that pure hierarchy overlap misses, and push
//!    antonym traps apart ("hyperpyrexia" vs "hypothermia").
//! 3. **Context affinity**: how much a concept belongs in a context tag
//!    (treatment vs risk vs monitoring vs toxicology); inherited down the
//!    hierarchy with noise, drawn independently for antonym twins.
//!
//! Methods only ever see names, the DAG, and the corpus — which is itself
//! *generated from* popularity × affinity, so corpus-based methods recover
//! affinity statistically, exactly as the paper intends.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

use medkb_ekg::Ekg;
use medkb_types::{ExtConceptId, IdVec};

use crate::generator::{GeneratedTerminology, Hierarchy};

/// Coarse semantic context families. Each ontology context maps onto one
/// tag (see [`ContextTag::from_relationship`]); per-tag affinities are what
/// make "drugs that treat X" and "drugs that cause X" behave differently
/// (Example 1, Example 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContextTag {
    /// Indication / treatment contexts.
    Treatment,
    /// Risk / adverse effect / warning contexts.
    Risk,
    /// Monitoring contexts.
    Monitoring,
    /// Toxicology / overdose contexts.
    Toxicology,
    /// Everything else.
    General,
}

/// Number of context tags.
pub const N_TAGS: usize = 5;

impl ContextTag {
    /// All tags in index order.
    pub const ALL: [ContextTag; N_TAGS] = [
        ContextTag::Treatment,
        ContextTag::Risk,
        ContextTag::Monitoring,
        ContextTag::Toxicology,
        ContextTag::General,
    ];

    /// Dense index of this tag.
    pub fn index(self) -> usize {
        match self {
            ContextTag::Treatment => 0,
            ContextTag::Risk => 1,
            ContextTag::Monitoring => 2,
            ContextTag::Toxicology => 3,
            ContextTag::General => 4,
        }
    }

    /// Map an ontology relationship (by domain concept name and role name)
    /// to its context tag.
    pub fn from_relationship(domain: &str, role: &str) -> ContextTag {
        match role {
            "treat" | "classTreats" | "forDisease" | "supportedBy" => ContextTag::Treatment,
            "cause" | "classCauses" | "leadsTo" | "warnsAbout" | "contraindicatedIn"
            | "riskEvidence" => ContextTag::Risk,
            "monitorsFinding" | "requiresMonitoring" => ContextTag::Monitoring,
            "manifestsAs" | "hasToxicology" | "overdoseOf" | "treatedBy" | "poisonOrganism"
            | "poisonAffects" => ContextTag::Toxicology,
            "hasFinding" | "hasSymptom" => match domain {
                "Indication" => ContextTag::Treatment,
                "Risk" | "Interaction" | "Precaution" => ContextTag::Risk,
                "Disease" => ContextTag::Treatment,
                _ => ContextTag::General,
            },
            _ => ContextTag::General,
        }
    }
}

/// The derived oracle: per-concept, per-tag context affinities over a
/// generated terminology.
#[derive(Debug, Clone)]
pub struct Oracle {
    affinity: IdVec<ExtConceptId, [f64; N_TAGS]>,
    /// Latent kernel bandwidth for relevance.
    sigma: f64,
}

/// Default relevance threshold: a candidate is gold-relevant when its
/// oracle score reaches this value. Calibrated so the median workload gold
/// set holds on the order of ten concepts, matching the paper's top-10
/// evaluation regime.
pub const DEFAULT_RELEVANCE_THRESHOLD: f64 = 0.10;

impl Oracle {
    /// Derive the oracle for `term`, seeding affinity noise with `seed`.
    pub fn derive(term: &GeneratedTerminology, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = term.ekg.len();
        let mut affinity: IdVec<ExtConceptId, [f64; N_TAGS]> = IdVec::filled([0.0; N_TAGS], n);

        // Hierarchy priors for the heads.
        let prior = |h: Hierarchy| -> [f64; N_TAGS] {
            match h {
                Hierarchy::ClinicalFinding => [0.70, 0.60, 0.40, 0.30, 0.50],
                Hierarchy::PharmaceuticalProduct => [0.20, 0.20, 0.10, 0.35, 0.50],
                Hierarchy::BodyStructure => [0.10, 0.10, 0.15, 0.10, 0.50],
                Hierarchy::Organism => [0.25, 0.05, 0.05, 0.15, 0.50],
                Hierarchy::Procedure => [0.30, 0.15, 0.40, 0.10, 0.50],
            }
        };

        // Root-to-leaf order: reverse of the children-first topo order.
        let order: Vec<ExtConceptId> =
            term.ekg.topo_children_first().iter().rev().copied().collect();
        for c in order {
            let meta = &term.meta[c];
            let parents: Vec<ExtConceptId> = term.ekg.native_parents(c).collect();
            let is_head = parents.len() == 1 && parents[0] == term.ekg.root();
            let base: [f64; N_TAGS] = if c == term.ekg.root() {
                [0.5; N_TAGS]
            } else if is_head || parents.is_empty() {
                prior(meta.hierarchy)
            } else if meta.antonym_of.is_some() {
                // Antonym twins draw independently: the context separation
                // between "hyperX" and "hypoX" is the whole point.
                let mut a = prior(meta.hierarchy);
                for x in a.iter_mut() {
                    *x = rng.gen::<f64>();
                }
                a
            } else if (meta.hierarchy == Hierarchy::ClinicalFinding
                && term.ekg.depth(c) == 3)
                || rng.gen_bool(0.10)
            {
                // Condition families polarize between the treatment and the
                // risk context: a finding is predominantly an indication or
                // predominantly an adverse effect, rarely both in equal
                // measure ("nausea" is caused by drugs far more often than
                // treated by them). Children inherit the polarity.
                let x: f64 = rng.gen();
                let mut a = [0.0; N_TAGS];
                for &p in &parents {
                    for (v, y) in a.iter_mut().zip(affinity[p]) {
                        *v += y;
                    }
                }
                for v in a.iter_mut() {
                    *v /= parents.len() as f64;
                }
                a[ContextTag::Treatment.index()] = 0.12 + 0.76 * x;
                a[ContextTag::Risk.index()] = 0.88 - 0.76 * x;
                a
            } else {
                let mut a = [0.0; N_TAGS];
                for &p in &parents {
                    for (x, y) in a.iter_mut().zip(affinity[p]) {
                        *x += y;
                    }
                }
                for x in a.iter_mut() {
                    *x /= parents.len() as f64;
                }
                a
            };
            let mut val = base;
            if c != term.ekg.root() && !is_head {
                for x in val.iter_mut() {
                    *x = (*x + rng.gen_range(-0.08f64..0.08)).clamp(0.02, 1.0);
                }
            }
            affinity[c] = val;
        }

        Self { affinity, sigma: 4.0 }
    }

    /// Context affinity of `concept` for `tag`, in `[0, 1]`.
    pub fn affinity(&self, concept: ExtConceptId, tag: ContextTag) -> f64 {
        self.affinity[concept][tag.index()]
    }

    /// Latent kernel bandwidth.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The leaf extension of `concept`: its leaf descendants, or itself if
    /// it is a leaf.
    pub fn extension(ekg: &Ekg, concept: ExtConceptId) -> HashSet<ExtConceptId> {
        let desc = ekg.descendants(concept);
        let leaves: HashSet<ExtConceptId> =
            desc.iter().copied().filter(|&d| ekg.children(d).is_empty()).collect();
        if leaves.is_empty() {
            HashSet::from([concept])
        } else {
            leaves
        }
    }

    /// Directional extension overlap `|ext(q) ∩ ext(b)| / |ext(b)|`.
    pub fn extension_overlap(
        ext_q: &HashSet<ExtConceptId>,
        ekg: &Ekg,
        b: ExtConceptId,
    ) -> f64 {
        let ext_b = Self::extension(ekg, b);
        let inter = ext_b.iter().filter(|c| ext_q.contains(c)).count();
        inter as f64 / ext_b.len() as f64
    }

    /// Graded oracle relevance of candidate `b` for query concept `q` in
    /// context `tag`.
    pub fn relevance(
        &self,
        term: &GeneratedTerminology,
        ext_q: &HashSet<ExtConceptId>,
        q: ExtConceptId,
        b: ExtConceptId,
        tag: ContextTag,
    ) -> f64 {
        let ext_b = Self::extension(&term.ekg, b);
        self.relevance_from_parts(term, ext_q, &ext_b, q, b, tag)
    }

    /// [`Oracle::relevance`] with both extensions precomputed — the batch
    /// evaluators cache candidate extensions across queries.
    pub fn relevance_from_parts(
        &self,
        term: &GeneratedTerminology,
        ext_q: &HashSet<ExtConceptId>,
        ext_b: &HashSet<ExtConceptId>,
        q: ExtConceptId,
        b: ExtConceptId,
        tag: ContextTag,
    ) -> f64 {
        if q == b {
            return self.affinity(b, tag);
        }
        let latent = (-term.latent_distance(q, b) / self.sigma).exp();
        let inter = ext_b.iter().filter(|c| ext_q.contains(c)).count();
        let overlap = inter as f64 / ext_b.len().max(1) as f64;
        // The affinity gate is soft: a semantically close finding is still
        // somewhat relevant in an off-context question (an SME would say
        // "related, though not what you asked about").
        (0.55 * latent + 0.45 * overlap) * (0.25 + 0.75 * self.affinity(b, tag))
    }

    /// Gold relevance scores for all `candidates`, computed with the query
    /// extension shared across candidates.
    pub fn judge(
        &self,
        term: &GeneratedTerminology,
        q: ExtConceptId,
        candidates: &[ExtConceptId],
        tag: ContextTag,
    ) -> HashMap<ExtConceptId, f64> {
        let ext_q = Self::extension(&term.ekg, q);
        candidates
            .iter()
            .map(|&b| (b, self.relevance(term, &ext_q, q, b, tag)))
            .collect()
    }

    /// The gold-relevant subset of `candidates` at `threshold`.
    pub fn gold_set(
        &self,
        term: &GeneratedTerminology,
        q: ExtConceptId,
        candidates: &[ExtConceptId],
        tag: ContextTag,
        threshold: f64,
    ) -> HashSet<ExtConceptId> {
        self.judge(term, q, candidates, tag)
            .into_iter()
            .filter(|&(_, s)| s >= threshold)
            .map(|(c, _)| c)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SnomedConfig;

    fn world() -> (GeneratedTerminology, Oracle) {
        let t = GeneratedTerminology::generate(&SnomedConfig::tiny(21));
        let o = Oracle::derive(&t, 99);
        (t, o)
    }

    #[test]
    fn affinities_in_unit_interval() {
        let (t, o) = world();
        for c in t.ekg.concepts() {
            for tag in ContextTag::ALL {
                let a = o.affinity(c, tag);
                assert!((0.0..=1.0).contains(&a), "{a}");
            }
        }
    }

    #[test]
    fn derive_is_deterministic() {
        let t = GeneratedTerminology::generate(&SnomedConfig::tiny(21));
        let a = Oracle::derive(&t, 5);
        let b = Oracle::derive(&t, 5);
        for c in t.ekg.concepts() {
            assert_eq!(a.affinity(c, ContextTag::Risk), b.affinity(c, ContextTag::Risk));
        }
    }

    #[test]
    fn descendant_scores_higher_than_far_ancestor() {
        let (t, o) = world();
        // Pick a mid-depth finding with children and a deep ancestor chain.
        let q = t
            .ekg
            .concepts()
            .find(|&c| {
                t.ekg.depth(c) >= 3
                    && !t.ekg.children(c).is_empty()
                    && t.meta[c].hierarchy == Hierarchy::ClinicalFinding
            })
            .expect("mid-depth concept exists");
        let child = t.ekg.children(q)[0].to;
        let head = t
            .ekg
            .ancestors(q)
            .into_iter()
            .find(|&a| t.ekg.depth(a) == 1)
            .expect("hierarchy head");
        let ext_q = Oracle::extension(&t.ekg, q);
        let s_child = o.relevance(&t, &ext_q, q, child, ContextTag::General);
        let s_head = o.relevance(&t, &ext_q, q, head, ContextTag::General);
        assert!(
            s_child > s_head,
            "child {} should beat far ancestor {}",
            s_child,
            s_head
        );
    }

    #[test]
    fn extension_of_leaf_is_itself() {
        let (t, _) = world();
        let leaf = t.ekg.concepts().find(|&c| t.ekg.children(c).is_empty()).unwrap();
        assert_eq!(Oracle::extension(&t.ekg, leaf), HashSet::from([leaf]));
    }

    #[test]
    fn overlap_of_descendant_is_one() {
        let (t, _) = world();
        let q = t
            .ekg
            .concepts()
            .find(|&c| c != t.ekg.root() && t.ekg.children(c).len() >= 2)
            .unwrap();
        let child = t.ekg.children(q)[0].to;
        let ext_q = Oracle::extension(&t.ekg, q);
        let ov = Oracle::extension_overlap(&ext_q, &t.ekg, child);
        assert!((ov - 1.0).abs() < 1e-12);
    }

    #[test]
    fn antonyms_score_low_despite_being_siblings() {
        let t = GeneratedTerminology::generate(&SnomedConfig {
            antonym_rate: 0.5,
            ..SnomedConfig::tiny(13)
        });
        let o = Oracle::derive(&t, 1);
        let (a, b) = t
            .meta
            .iter()
            .find_map(|(id, m)| m.antonym_of.map(|p| (id, p)))
            .expect("antonym pair exists");
        // The antonym is latently pushed away: farther from its pair than
        // the shared parent is from either twin.
        let parent = t.ekg.parents(a)[0].to;
        assert!(
            t.latent_distance(a, b) > t.latent_distance(a, parent),
            "antonym pair {} vs parent {}",
            t.latent_distance(a, b),
            t.latent_distance(a, parent)
        );
        assert!(t.latent_distance(a, b) > t.latent_distance(b, parent));
        // And the oracle's latent kernel therefore scores the pair lower
        // than the parent at equal affinity: compare the raw kernels.
        let k_pair = (-t.latent_distance(a, b) / o.sigma()).exp();
        let k_parent = (-t.latent_distance(a, parent) / o.sigma()).exp();
        assert!(k_pair < k_parent);
    }

    #[test]
    fn context_tag_mapping_matches_paper_examples() {
        assert_eq!(
            ContextTag::from_relationship("Indication", "hasFinding"),
            ContextTag::Treatment
        );
        assert_eq!(ContextTag::from_relationship("Risk", "hasFinding"), ContextTag::Risk);
        assert_eq!(ContextTag::from_relationship("Drug", "cause"), ContextTag::Risk);
        assert_eq!(ContextTag::from_relationship("Drug", "treat"), ContextTag::Treatment);
        assert_eq!(
            ContextTag::from_relationship("Drug", "hasBrand"),
            ContextTag::General
        );
    }

    #[test]
    fn judge_and_gold_set_agree() {
        let (t, o) = world();
        let q = t.of_hierarchy(Hierarchy::ClinicalFinding)[5];
        let candidates: Vec<ExtConceptId> =
            t.ekg.neighborhood(q, 3).iter().map(|&(c, _)| c).collect();
        let scores = o.judge(&t, q, &candidates, ContextTag::Treatment);
        let gold = o.gold_set(&t, q, &candidates, ContextTag::Treatment, 0.3);
        for (&c, &s) in &scores {
            assert_eq!(gold.contains(&c), s >= 0.3);
        }
    }
}
