//! Synthetic terminology generation.
//!
//! Produces a rooted, multi-parent DAG shaped like SNOMED CT: a handful of
//! top-level hierarchies (clinical findings dominating), deep modifier
//! chains, registered synonyms, and antonym-trap siblings. Alongside the
//! graph it emits per-concept metadata that the rest of the synthetic world
//! builds on: the latent semantic vector (ground-truth only — no method
//! ever sees it), a Zipf popularity weight (drives corpus mention counts),
//! and antonym links.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use medkb_ekg::{Ekg, EkgBuilder};
use medkb_types::{ExtConceptId, IdVec};

use crate::config::SnomedConfig;
use crate::vocab;

/// Dimensionality of the latent ground-truth vectors.
pub const LATENT_DIM: usize = 12;

/// Top-level hierarchy a concept belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hierarchy {
    /// Symptoms, disorders, findings — the hierarchy query relaxation
    /// mostly operates in.
    ClinicalFinding,
    /// Drug products and classes.
    PharmaceuticalProduct,
    /// Anatomy.
    BodyStructure,
    /// Pathogens.
    Organism,
    /// Clinical procedures.
    Procedure,
}

impl Hierarchy {
    /// All hierarchies with their generation proportions.
    pub const PROPORTIONS: [(Hierarchy, f64); 5] = [
        (Hierarchy::ClinicalFinding, 0.55),
        (Hierarchy::PharmaceuticalProduct, 0.18),
        (Hierarchy::BodyStructure, 0.10),
        (Hierarchy::Organism, 0.07),
        (Hierarchy::Procedure, 0.10),
    ];

    /// The head concept name of this hierarchy.
    pub fn head_name(self) -> &'static str {
        match self {
            Hierarchy::ClinicalFinding => "clinical finding",
            Hierarchy::PharmaceuticalProduct => "pharmaceutical / biologic product",
            Hierarchy::BodyStructure => "body structure",
            Hierarchy::Organism => "organism",
            Hierarchy::Procedure => "procedure",
        }
    }
}

/// Ground-truth metadata of one generated concept.
#[derive(Debug, Clone)]
pub struct ConceptMeta {
    /// Hierarchy membership.
    pub hierarchy: Hierarchy,
    /// Latent semantic position (oracle-only).
    pub latent: [f32; LATENT_DIM],
    /// Zipf popularity weight in `(0, 1]`; drives corpus mention counts.
    pub popularity: f64,
    /// The antonym partner, if this concept is half of a trap pair.
    pub antonym_of: Option<ExtConceptId>,
}

/// A generated terminology: the graph plus ground-truth metadata.
#[derive(Debug, Clone)]
pub struct GeneratedTerminology {
    /// The external knowledge source graph.
    pub ekg: Ekg,
    /// Per-concept ground truth (same index space as `ekg`).
    pub meta: IdVec<ExtConceptId, ConceptMeta>,
}

impl GeneratedTerminology {
    /// Generate a terminology from `config`.
    pub fn generate(config: &SnomedConfig) -> Self {
        Generator::new(config).run()
    }

    /// Concepts of a hierarchy (the root belongs to none).
    pub fn of_hierarchy(&self, h: Hierarchy) -> Vec<ExtConceptId> {
        let root = self.ekg.root();
        self.meta
            .iter()
            .filter(|&(id, m)| id != root && m.hierarchy == h)
            .map(|(id, _)| id)
            .collect()
    }

    /// Concepts of a hierarchy at depth ≥ `min_depth` — hierarchy heads and
    /// broad category nodes are rarely meaningful query terms.
    pub fn of_hierarchy_below(&self, h: Hierarchy, min_depth: u32) -> Vec<ExtConceptId> {
        self.of_hierarchy(h)
            .into_iter()
            .filter(|&c| self.ekg.depth(c) >= min_depth)
            .collect()
    }

    /// Euclidean distance between the latents of two concepts.
    pub fn latent_distance(&self, a: ExtConceptId, b: ExtConceptId) -> f64 {
        let (va, vb) = (&self.meta[a].latent, &self.meta[b].latent);
        va.iter().zip(vb).map(|(x, y)| (f64::from(x - y)).powi(2)).sum::<f64>().sqrt()
    }
}

/// Name-state of a finding-hierarchy node, from which child names derive.
#[derive(Debug, Clone, Default)]
struct FindingState {
    organ: Option<usize>,
    condition: Option<usize>,
    modifiers: Vec<usize>,
}

struct NodeDraft {
    name: String,
    finding_state: FindingState,
    drug_class_end: Option<&'static str>,
}

struct Generator<'a> {
    config: &'a SnomedConfig,
    rng: StdRng,
    used_names: std::collections::HashSet<String>,
    /// Ground-truth semantic component vectors: a finding *means* its
    /// anatomical site plus its pathology plus its modifiers. Taxonomy,
    /// names, and corpus co-mentions are all (noisy) views of this one
    /// underlying semantics, which keeps the oracle's judgments coherent
    /// with what a careful reader of the names would say.
    organ_vecs: Vec<[f32; LATENT_DIM]>,
    condition_vecs: Vec<[f32; LATENT_DIM]>,
    modifier_vecs: Vec<[f32; LATENT_DIM]>,
}

impl<'a> Generator<'a> {
    fn new(config: &'a SnomedConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let table = |n: usize, scale: f32, rng: &mut StdRng| -> Vec<[f32; LATENT_DIM]> {
            (0..n)
                .map(|_| {
                    let mut v = [0.0f32; LATENT_DIM];
                    for x in v.iter_mut() {
                        *x = (rng.gen::<f32>() * 2.0 - 1.0) * scale;
                    }
                    v
                })
                .collect()
        };
        let organ_vecs = table(vocab::ORGANS.len(), 2.2, &mut rng);
        let condition_vecs = table(vocab::CONDITIONS.len(), 1.6, &mut rng);
        let modifier_vecs = table(vocab::MODIFIERS.len(), 0.45, &mut rng);
        Self {
            config,
            rng,
            used_names: std::collections::HashSet::new(),
            organ_vecs,
            condition_vecs,
            modifier_vecs,
        }
    }

    /// Latent of a finding from its semantic name state: head offset +
    /// organ + condition + modifiers + small idiosyncratic noise.
    fn finding_latent(
        &mut self,
        head: &[f32; LATENT_DIM],
        state: &FindingState,
    ) -> [f32; LATENT_DIM] {
        let mut v = *head;
        if let Some(o) = state.organ {
            for (x, y) in v.iter_mut().zip(self.organ_vecs[o]) {
                *x += y;
            }
        }
        if let Some(c) = state.condition {
            for (x, y) in v.iter_mut().zip(self.condition_vecs[c]) {
                *x += y;
            }
        }
        for &m in &state.modifiers {
            for (x, y) in v.iter_mut().zip(self.modifier_vecs[m]) {
                *x += y;
            }
        }
        for x in v.iter_mut() {
            *x += (self.rng.gen::<f32>() * 2.0 - 1.0) * 0.25;
        }
        v
    }

    fn claim_name(&mut self, base: String) -> String {
        if self.used_names.insert(base.clone()) {
            return base;
        }
        for k in 2.. {
            let candidate = format!("{base} type {k}");
            if self.used_names.insert(candidate.clone()) {
                return candidate;
            }
        }
        unreachable!()
    }

    fn run(mut self) -> GeneratedTerminology {
        // nodes[i] = (name, parent index or usize::MAX for root, hierarchy or None for root)
        struct Node {
            name: String,
            parents: Vec<usize>,
            depth: u32,
            hierarchy: Option<Hierarchy>,
            finding_state: FindingState,
            drug_class_end: Option<&'static str>,
            antonym_of: Option<usize>,
            latent: [f32; LATENT_DIM],
        }
        let mut nodes: Vec<Node> = Vec::with_capacity(self.config.concepts + 8);
        self.used_names.insert("snomed ct concept".into());
        nodes.push(Node {
            name: "snomed ct concept".into(),
            parents: Vec::new(),
            depth: 0,
            hierarchy: None,
            finding_state: FindingState::default(),
            drug_class_end: None,
            antonym_of: None,
            latent: [0.0; LATENT_DIM],
        });

        // Hierarchy heads, with well-separated latents.
        let mut heads: Vec<(Hierarchy, usize)> = Vec::new();
        for (i, (h, _)) in Hierarchy::PROPORTIONS.iter().enumerate() {
            let mut latent = [0.0f32; LATENT_DIM];
            // Two dedicated axes per hierarchy keep the heads far apart.
            latent[(2 * i) % LATENT_DIM] = 10.0;
            latent[(2 * i + 1) % LATENT_DIM] = if i % 2 == 0 { 6.0 } else { -6.0 };
            let name = self.claim_name(h.head_name().to_string());
            nodes.push(Node {
                name,
                parents: vec![0],
                depth: 1,
                hierarchy: Some(*h),
                finding_state: FindingState::default(),
                drug_class_end: None,
                antonym_of: None,
                latent,
            });
            heads.push((*h, nodes.len() - 1));
        }

        // Per-hierarchy member lists for parent sampling.
        let mut members: std::collections::HashMap<Hierarchy, Vec<usize>> =
            heads.iter().map(|&(h, idx)| (h, vec![idx])).collect();

        let total = self.config.concepts.saturating_sub(nodes.len());
        let mut budget: Vec<(Hierarchy, usize)> = Hierarchy::PROPORTIONS
            .iter()
            .map(|&(h, p)| (h, ((total as f64) * p).round() as usize))
            .collect();

        // Attempts can fail (name collision, depth cap); only successful
        // node creations consume budget, with a global attempt guard.
        let mut attempts = 0usize;
        let max_attempts = self.config.concepts.saturating_mul(30).max(1_000);
        while let Some(slot) = {
            let remaining: Vec<usize> = budget
                .iter()
                .enumerate()
                .filter(|(_, &(_, n))| n > 0)
                .map(|(i, _)| i)
                .collect();
            if remaining.is_empty() || attempts >= max_attempts {
                None
            } else {
                Some(remaining[self.rng.gen_range(0..remaining.len())])
            }
        } {
            attempts += 1;
            let hierarchy = budget[slot].0;
            let pool = &members[&hierarchy];
            // Bias towards recently added nodes to grow deep chains.
            let parent = if pool.len() > 4 && self.rng.gen_bool(0.6) {
                let lo = pool.len() - pool.len() / 4 - 1;
                pool[self.rng.gen_range(lo..pool.len())]
            } else {
                pool[self.rng.gen_range(0..pool.len())]
            };
            if nodes[parent].depth >= self.config.max_depth {
                continue; // budget spent; tree stops growing downward here
            }

            let draft = self.derive_child(
                hierarchy,
                &nodes[parent].name,
                &nodes[parent].finding_state,
                nodes[parent].drug_class_end,
                parent,
            );
            let Some(draft) = draft else { continue };

            let depth = nodes[parent].depth + 1;
            let head_latent = nodes[heads
                .iter()
                .find(|&&(h, _)| h == hierarchy)
                .expect("head exists")
                .1]
                .latent;
            let latent = if hierarchy == Hierarchy::ClinicalFinding {
                self.finding_latent(&head_latent, &draft.finding_state)
            } else {
                self.child_latent(&nodes[parent].latent, depth, 1.0)
            };
            let name = self.claim_name(draft.name);
            nodes.push(Node {
                name,
                parents: vec![parent],
                depth,
                hierarchy: Some(hierarchy),
                finding_state: draft.finding_state.clone(),
                drug_class_end: draft.drug_class_end,
                antonym_of: None,
                latent,
            });
            budget[slot].1 -= 1;
            let new_idx = nodes.len() - 1;
            members.get_mut(&hierarchy).unwrap().push(new_idx);

            // Occasional second parent: any earlier node of the hierarchy
            // that is not the first parent (acyclic because the new node
            // has no descendants yet).
            if self.rng.gen_bool(self.config.multi_parent_rate) {
                let pool = &members[&hierarchy];
                // SNOMED's multi-parents are semantically coherent: pick
                // the latently closest of a handful of candidates.
                let mut best: Option<(f64, usize)> = None;
                for _ in 0..6 {
                    let cand = pool[self.rng.gen_range(0..pool.len() - 1)];
                    if cand == parent || cand == new_idx {
                        continue;
                    }
                    let d: f64 = nodes[new_idx]
                        .latent
                        .iter()
                        .zip(nodes[cand].latent)
                        .map(|(a, b)| f64::from(a - b).powi(2))
                        .sum();
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, cand));
                    }
                }
                // Only accept genuinely close candidates: a cross-family
                // second parent would let the Eq. 2 rollup mix unrelated
                // subtrees, which real SNOMED multi-parents (same-family
                // refinements) do not do.
                if let Some((d, second)) = best {
                    if d < 6.0 {
                        nodes[new_idx].parents.push(second);
                    }
                }
            }

            // Antonym trap: spawn the opposite sibling under the same
            // parent, latently far from its pair.
            if hierarchy == Hierarchy::ClinicalFinding
                && self.rng.gen_bool(self.config.antonym_rate)
            {
                let root_word = vocab::ANTONYM_ROOTS
                    [self.rng.gen_range(0..vocab::ANTONYM_ROOTS.len())];
                let pos = format!("hyper{root_word}");
                let neg = format!("hypo{root_word}");
                if !self.used_names.contains(&pos) && !self.used_names.contains(&neg) {
                    let pos_name = self.claim_name(pos);
                    let neg_name = self.claim_name(neg);
                    // The pair shares its site but opposes in direction:
                    // base ± r with |r| comparable to a condition vector.
                    let mut r = [0.0f32; LATENT_DIM];
                    for x in r.iter_mut() {
                        *x = (self.rng.gen::<f32>() * 2.0 - 1.0) * 1.8;
                    }
                    let parent_latent = nodes[parent].latent;
                    let mut base_latent = parent_latent;
                    let mut anti_latent = parent_latent;
                    for ((b, a), rr) in
                        base_latent.iter_mut().zip(anti_latent.iter_mut()).zip(r)
                    {
                        *b += rr;
                        *a -= rr;
                    }
                    for (n, l, anti) in
                        [(pos_name, base_latent, false), (neg_name, anti_latent, true)]
                    {
                        nodes.push(Node {
                            name: n,
                            parents: vec![parent],
                            depth,
                            hierarchy: Some(hierarchy),
                            finding_state: FindingState::default(),
                            drug_class_end: None,
                            antonym_of: if anti { Some(nodes.len() - 1) } else { None },
                            latent: l,
                        });
                        members.get_mut(&hierarchy).unwrap().push(nodes.len() - 1);
                    }
                    let last = nodes.len() - 1;
                    nodes[last - 1].antonym_of = Some(last);
                }
            }
        }

        // Build the Ekg and metadata.
        let mut builder = EkgBuilder::new();
        let ids: Vec<ExtConceptId> = nodes.iter().map(|n| builder.concept(&n.name)).collect();
        for (i, n) in nodes.iter().enumerate() {
            for &p in &n.parents {
                builder.is_a(ids[i], ids[p]);
            }
        }
        // Synonyms.
        let mut synonym_plan: Vec<(usize, String)> = Vec::new();
        for (i, n) in nodes.iter().enumerate() {
            if i == 0 || !self.rng.gen_bool(self.config.synonym_rate.min(1.0)) {
                continue;
            }
            let candidates = [
                vocab::organ_swap_synonym(&n.name),
                vocab::reorder_synonym(&n.name),
                vocab::abbreviation(&n.name),
            ];
            let available: Vec<String> = candidates.into_iter().flatten().collect();
            if !available.is_empty() {
                let pick = available[self.rng.gen_range(0..available.len())].clone();
                synonym_plan.push((i, pick));
            }
        }
        for (i, syn) in synonym_plan {
            builder.synonym(ids[i], &syn);
        }
        let ekg = builder.build().expect("generated terminology must be a valid rooted DAG");

        // Popularity: Zipf over a random permutation within each hierarchy.
        let mut popularity = vec![0.0f64; nodes.len()];
        // Iterate hierarchies in declaration order: HashMap order would make
        // the RNG stream (and thus popularity ranks) nondeterministic.
        for (h, _) in Hierarchy::PROPORTIONS {
            let idxs = &members[&h];
            let mut perm: Vec<usize> = idxs.clone();
            // Fisher-Yates with the generator RNG.
            for i in (1..perm.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                perm.swap(i, j);
            }
            for (rank, &idx) in perm.iter().enumerate() {
                popularity[idx] = 1.0 / ((rank + 1) as f64).powf(0.9);
            }
        }
        popularity[0] = 1.0;

        let meta: IdVec<ExtConceptId, ConceptMeta> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| ConceptMeta {
                hierarchy: n.hierarchy.unwrap_or(Hierarchy::ClinicalFinding),
                latent: n.latent,
                popularity: popularity[i],
                antonym_of: n.antonym_of.map(|j| ids[j]),
            })
            .collect();

        GeneratedTerminology { ekg, meta }
    }

    fn child_latent(&mut self, parent: &[f32; LATENT_DIM], depth: u32, scale: f64) -> [f32; LATENT_DIM] {
        let step = scale * 3.0 * 0.78f64.powi(depth as i32);
        let mut out = *parent;
        for x in out.iter_mut() {
            *x += (self.rng.gen::<f64>() * 2.0 - 1.0) as f32 * step as f32;
        }
        out
    }

    fn derive_child(
        &mut self,
        hierarchy: Hierarchy,
        parent_name: &str,
        parent_state: &FindingState,
        parent_class_end: Option<&'static str>,
        parent_idx: usize,
    ) -> Option<NodeDraft> {
        let name_and_state: (String, FindingState, Option<&'static str>) = match hierarchy {
            Hierarchy::ClinicalFinding => {
                let mut st = parent_state.clone();
                let name = if st.organ.is_none() && st.condition.is_none() {
                    // Level under the head: organ category.
                    let organ = self.rng.gen_range(0..vocab::ORGANS.len());
                    st.organ = Some(organ);
                    format!("{} finding", vocab::ORGANS[organ].0)
                } else if st.condition.is_none() {
                    let condition = self.rng.gen_range(0..vocab::CONDITIONS.len());
                    st.condition = Some(condition);
                    format!(
                        "{} {}",
                        vocab::ORGANS[st.organ.unwrap()].0,
                        vocab::CONDITIONS[condition]
                    )
                } else {
                    // Add a modifier (or swap the condition for breadth).
                    if st.modifiers.len() < 3 && self.rng.gen_bool(0.8) {
                        let m = self.rng.gen_range(0..vocab::MODIFIERS.len());
                        if st.modifiers.contains(&m) {
                            return None;
                        }
                        st.modifiers.push(m);
                    } else {
                        let c = self.rng.gen_range(0..vocab::CONDITIONS.len());
                        st.condition = Some(c);
                        st.modifiers.clear();
                    }
                    let mods: Vec<&str> =
                        st.modifiers.iter().map(|&m| vocab::MODIFIERS[m]).collect();
                    let organ = st.organ.map(|o| vocab::ORGANS[o].0).unwrap_or("systemic");
                    let condition = vocab::CONDITIONS[st.condition.unwrap()];
                    if mods.is_empty() {
                        format!("{organ} {condition}")
                    } else {
                        format!("{} {organ} {condition}", mods.join(" "))
                    }
                };
                // A name collision would create a second concept with the
                // same semantics in a possibly unrelated branch; skip and
                // let the budget try again elsewhere.
                if self.used_names.contains(&name) {
                    return None;
                }
                (name, st, None)
            }
            Hierarchy::PharmaceuticalProduct => {
                if parent_class_end.is_none() && parent_idx != 0 && parent_name.ends_with("product")
                {
                    // Drug class level.
                    let end = vocab::DRUG_ENDS[self.rng.gen_range(0..vocab::DRUG_ENDS.len())];
                    (format!("{end} class agent"), FindingState::default(), Some(end))
                } else if let Some(end) = parent_class_end {
                    if parent_name.contains(' ') {
                        // Already a specific product: add a strength.
                        let mg = [5, 10, 20, 25, 40, 50, 100, 200][self.rng.gen_range(0..8usize)];
                        (format!("{parent_name} {mg} mg"), FindingState::default(), Some(end))
                    } else if parent_name.ends_with("agent") {
                        // Product under a class, sharing the suffix.
                        let start =
                            vocab::DRUG_STARTS[self.rng.gen_range(0..vocab::DRUG_STARTS.len())];
                        let mid = vocab::DRUG_MIDS[self.rng.gen_range(0..vocab::DRUG_MIDS.len())];
                        (format!("{start}{mid}{end}"), FindingState::default(), Some(end))
                    } else {
                        // Product form.
                        let form = ["oral tablet", "capsule", "injection", "topical cream"]
                            [self.rng.gen_range(0..4usize)];
                        (format!("{parent_name} {form}"), FindingState::default(), Some(end))
                    }
                } else {
                    let end = vocab::DRUG_ENDS[self.rng.gen_range(0..vocab::DRUG_ENDS.len())];
                    (format!("{end} class agent"), FindingState::default(), Some(end))
                }
            }
            Hierarchy::BodyStructure => {
                let organ = vocab::ORGANS[self.rng.gen_range(0..vocab::ORGANS.len())];
                let region = ["cortex", "medulla", "lobe", "segment", "wall", "membrane", "canal"]
                    [self.rng.gen_range(0..7usize)];
                let name = if parent_name == "body structure" {
                    format!("{} structure", organ.1)
                } else {
                    format!("{} {region}", organ.0)
                };
                (name, FindingState::default(), None)
            }
            Hierarchy::Organism => {
                let name = if parent_name == "organism" {
                    format!(
                        "{}{} genus",
                        vocab::GENUS_STARTS[self.rng.gen_range(0..vocab::GENUS_STARTS.len())],
                        vocab::GENUS_ENDS[self.rng.gen_range(0..vocab::GENUS_ENDS.len())]
                    )
                } else {
                    let genus = parent_name.trim_end_matches(" genus");
                    format!(
                        "{genus} {}",
                        vocab::SPECIES[self.rng.gen_range(0..vocab::SPECIES.len())]
                    )
                };
                (name, FindingState::default(), None)
            }
            Hierarchy::Procedure => {
                let proc = vocab::PROCEDURES[self.rng.gen_range(0..vocab::PROCEDURES.len())];
                let name = if parent_name == "procedure" {
                    format!("{proc} procedure")
                } else {
                    let organ = vocab::ORGANS[self.rng.gen_range(0..vocab::ORGANS.len())];
                    format!("{} {proc}", organ.0)
                };
                (name, FindingState::default(), None)
            }
        };
        Some(NodeDraft {
            name: name_and_state.0,
            finding_state: name_and_state.1,
            drug_class_end: name_and_state.2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_ekg::EkgStats;

    fn small() -> GeneratedTerminology {
        GeneratedTerminology::generate(&SnomedConfig::tiny(42))
    }

    #[test]
    fn generates_roughly_requested_size() {
        let t = small();
        let n = t.ekg.len();
        assert!(n > 300 && n < 700, "got {n} concepts");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = GeneratedTerminology::generate(&SnomedConfig::tiny(7));
        let b = GeneratedTerminology::generate(&SnomedConfig::tiny(7));
        assert_eq!(a.ekg.len(), b.ekg.len());
        for c in a.ekg.concepts() {
            assert_eq!(a.ekg.name(c), b.ekg.name(c));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratedTerminology::generate(&SnomedConfig::tiny(7));
        let b = GeneratedTerminology::generate(&SnomedConfig::tiny(8));
        let same = a.ekg.len() == b.ekg.len()
            && a.ekg.concepts().all(|c| a.ekg.name(c) == b.ekg.name(c));
        assert!(!same);
    }

    #[test]
    fn all_hierarchies_populated() {
        let t = small();
        for (h, _) in Hierarchy::PROPORTIONS {
            assert!(
                !t.of_hierarchy(h).is_empty(),
                "hierarchy {h:?} empty"
            );
        }
        let findings = t.of_hierarchy(Hierarchy::ClinicalFinding).len();
        let drugs = t.of_hierarchy(Hierarchy::PharmaceuticalProduct).len();
        assert!(findings > drugs, "findings should dominate");
    }

    #[test]
    fn structure_is_deep_and_multi_parent() {
        let t = small();
        let stats = EkgStats::compute(&t.ekg);
        assert!(stats.max_depth >= 4, "{stats}");
        assert!(stats.multi_parent > 0, "{stats}");
    }

    #[test]
    fn antonym_pairs_are_linked_and_latently_far() {
        let t = GeneratedTerminology::generate(&SnomedConfig {
            antonym_rate: 0.5,
            ..SnomedConfig::tiny(11)
        });
        let pairs: Vec<(ExtConceptId, ExtConceptId)> = t
            .meta
            .iter()
            .filter_map(|(id, m)| m.antonym_of.map(|o| (id, o)))
            .collect();
        assert!(!pairs.is_empty());
        for (a, b) in pairs {
            // The antonym is a sibling (shares a parent)…
            let pa: std::collections::HashSet<_> =
                t.ekg.parents(a).iter().map(|e| e.to).collect();
            assert!(t.ekg.parents(b).iter().any(|e| pa.contains(&e.to)));
            // …whose latent is pushed away from its pair, farther apart
            // than either is from the shared parent.
            let parent = t.ekg.parents(b)[0].to;
            assert!(
                t.latent_distance(a, b) > t.latent_distance(b, parent),
                "{} / {}",
                t.ekg.name(a),
                t.ekg.name(b)
            );
        }
    }

    #[test]
    fn popularity_is_positive_and_bounded() {
        let t = small();
        for (_, m) in t.meta.iter() {
            assert!(m.popularity > 0.0 && m.popularity <= 1.0);
        }
    }

    #[test]
    #[ignore = "large-scale stress run: cargo test -p medkb-snomed -- --ignored"]
    fn stress_generate_fifty_thousand_concepts() {
        let t = GeneratedTerminology::generate(&SnomedConfig {
            concepts: 50_000,
            seed: 777,
            ..SnomedConfig::default()
        });
        assert!(t.ekg.len() > 40_000, "{}", t.ekg.len());
        let stats = medkb_ekg::EkgStats::compute(&t.ekg);
        assert!(stats.max_depth >= 8, "{stats}");
        assert!(stats.multi_parent > 1_000, "{stats}");
        // Random graph probes stay fast at this scale.
        let findings = t.of_hierarchy_below(Hierarchy::ClinicalFinding, 3);
        let (a, b) = (findings[10], findings[findings.len() / 2]);
        let out = medkb_ekg::lcs::lcs(&t.ekg, a, b);
        assert!(!out.concepts.is_empty());
        assert!(!t.ekg.neighborhood(a, 4).is_empty());
    }

    #[test]
    fn synonyms_registered() {
        let t = small();
        let with_syn = t.ekg.concepts().filter(|&c| t.ekg.synonyms(c).next().is_some()).count();
        assert!(with_syn > 10, "only {with_syn} concepts have synonyms");
    }
}
