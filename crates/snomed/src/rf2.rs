//! RF2-flavoured TSV exchange format for terminologies.
//!
//! Real SNOMED CT ships as RF2 tab-separated release files. To keep
//! generated worlds reproducible across processes (and to give downstream
//! users a way to load *their own* terminology, which is the paper's
//! "external knowledge source is pluggable" stance), this module serializes
//! an [`Ekg`] to two TSV documents and parses them back:
//!
//! * **concepts**: `id <TAB> primaryName <TAB> synonym|synonym|…`
//! * **relationships**: `childId <TAB> parentId` (native is-a edges only;
//!   shortcut edges are an ingestion artifact and are never exported).

use std::collections::HashMap;

use medkb_ekg::{Ekg, EkgBuilder};
use medkb_types::{ExtConceptId, Id, MedKbError, Result, ValidationReport};

/// Serialize the native part of `ekg` to `(concepts_tsv, relationships_tsv)`.
pub fn to_tsv(ekg: &Ekg) -> (String, String) {
    let mut concepts = String::new();
    let mut rels = String::new();
    for c in ekg.concepts() {
        let syns: Vec<&str> = ekg.synonyms(c).collect();
        concepts.push_str(&format!("{}\t{}\t{}\n", c.as_u32(), ekg.name(c), syns.join("|")));
        for p in ekg.native_parents(c) {
            rels.push_str(&format!("{}\t{}\n", c.as_u32(), p.as_u32()));
        }
    }
    (concepts, rels)
}

/// Parse a terminology from TSV documents produced by [`to_tsv`] (or by an
/// external exporter following the same layout).
///
/// # Errors
/// [`MedKbError::Validation`] listing **every** malformed line, dangling
/// id, duplicate raw id, and duplicate concept name across both documents
/// (not just the first one found), plus the usual structural errors from
/// [`EkgBuilder::build`] once the documents themselves are clean.
pub fn from_tsv(concepts_tsv: &str, relationships_tsv: &str) -> Result<Ekg> {
    let mut report = ValidationReport::new();
    let mut builder = EkgBuilder::new();
    let mut id_map: HashMap<u32, ExtConceptId> = HashMap::new();
    // The builder interns concepts by name, so a repeated primary name
    // would silently alias two raw ids onto one concept. Track first-seen
    // names and reject the collision instead.
    let mut name_line: HashMap<String, usize> = HashMap::new();
    for (lineno, line) in concepts_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (raw_id, name, syns) = match (parts.next(), parts.next(), parts.next()) {
            (Some(id), Some(name), syns) => (id, name, syns.unwrap_or("")),
            _ => {
                report.defect("concepts", Some(lineno + 1), "expected 2-3 tab fields");
                continue;
            }
        };
        let raw: u32 = match raw_id.parse() {
            Ok(n) => n,
            Err(_) => {
                report.defect("concepts", Some(lineno + 1), format!("bad id {raw_id:?}"));
                continue;
            }
        };
        if name.is_empty() {
            report.defect("concepts", Some(lineno + 1), "empty name");
            continue;
        }
        if let Some(&first) = name_line.get(name) {
            report.defect(
                "concepts",
                Some(lineno + 1),
                format!("duplicate concept name {name:?} (first on line {first})"),
            );
            continue;
        }
        name_line.insert(name.to_string(), lineno + 1);
        let id = builder.concept(name);
        if id_map.insert(raw, id).is_some() {
            report.defect("concepts", Some(lineno + 1), format!("duplicate id {raw}"));
            continue;
        }
        for syn in syns.split('|').filter(|s| !s.is_empty()) {
            builder.synonym(id, syn);
        }
    }
    for (lineno, line) in relationships_tsv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, '\t');
        let (child, parent) = match (parts.next(), parts.next()) {
            (Some(c), Some(p)) => (c, p),
            _ => {
                report.defect("relationships", Some(lineno + 1), "expected 2 tab fields");
                continue;
            }
        };
        let mut resolve = |raw: &str| -> Option<ExtConceptId> {
            let n: u32 = match raw.parse() {
                Ok(n) => n,
                Err(_) => {
                    report.defect("relationships", Some(lineno + 1), format!("bad id {raw:?}"));
                    return None;
                }
            };
            let hit = id_map.get(&n).copied();
            if hit.is_none() {
                report.defect(
                    "relationships",
                    Some(lineno + 1),
                    format!("unknown concept id {n}"),
                );
            }
            hit
        };
        let (child, parent) = (resolve(child), resolve(parent));
        if let (Some(c), Some(p)) = (child, parent) {
            builder.is_a(c, p);
        }
    }
    report.into_result()?;
    builder.build()
}

/// Write both TSV documents to `dir` as `concepts.tsv` / `relationships.tsv`.
pub fn save_dir(ekg: &Ekg, dir: &std::path::Path) -> std::io::Result<()> {
    let (concepts, rels) = to_tsv(ekg);
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("concepts.tsv"), concepts)?;
    std::fs::write(dir.join("relationships.tsv"), rels)?;
    Ok(())
}

/// Load a terminology saved by [`save_dir`].
pub fn load_dir(dir: &std::path::Path) -> Result<Ekg> {
    let read = |name: &str| {
        std::fs::read_to_string(dir.join(name)).map_err(|e| MedKbError::Corrupt {
            detail: format!("cannot read {name}: {e}"),
        })
    };
    from_tsv(&read("concepts.tsv")?, &read("relationships.tsv")?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SnomedConfig;
    use crate::generator::GeneratedTerminology;

    #[test]
    fn roundtrip_preserves_structure() {
        let t = GeneratedTerminology::generate(&SnomedConfig::tiny(3));
        let (c, r) = to_tsv(&t.ekg);
        let back = from_tsv(&c, &r).unwrap();
        assert_eq!(back.len(), t.ekg.len());
        for concept in t.ekg.concepts() {
            let name = t.ekg.name(concept);
            let hit = back.lookup_name(name);
            assert!(!hit.is_empty(), "lost {name:?}");
        }
        assert_eq!(back.edge_count(), t.ekg.edge_count());
        assert_eq!(back.root(), t.ekg.root());
    }

    #[test]
    fn synonyms_roundtrip() {
        let f = crate::figures::paper_fragment();
        let (c, r) = to_tsv(&f.ekg);
        let back = from_tsv(&c, &r).unwrap();
        assert!(!back.lookup_name("pyrexia").is_empty());
    }

    #[test]
    fn rejects_malformed_concepts() {
        assert!(matches!(from_tsv("not-a-number\tname\t\n", ""), Err(MedKbError::Validation(_))));
        assert!(matches!(from_tsv("singlefield\n", ""), Err(MedKbError::Validation(_))));
        assert!(matches!(from_tsv("1\t\t\n", ""), Err(MedKbError::Validation(_))));
    }

    #[test]
    fn rejects_duplicate_concept_id() {
        let tsv = "1\ta\t\n1\tb\t\n";
        assert!(matches!(from_tsv(tsv, ""), Err(MedKbError::Validation(_))));
    }

    #[test]
    fn rejects_duplicate_concept_name() {
        // Interning would silently alias raw ids 1 and 2 onto one concept;
        // the loader must surface the collision instead.
        let tsv = "1\tfever\t\n2\tfever\t\n";
        match from_tsv(tsv, "") {
            Err(MedKbError::Validation(r)) => {
                assert_eq!(r.len(), 1);
                let d = r.defects()[0].to_string();
                assert!(d.contains("duplicate concept name"), "{d}");
                assert!(d.contains("first on line 1"), "{d}");
            }
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_dangling_relationship() {
        let concepts = "1\troot\t\n2\tchild\t\n";
        assert!(matches!(from_tsv(concepts, "2\t99\n"), Err(MedKbError::Validation(_))));
        assert!(matches!(from_tsv(concepts, "2\n"), Err(MedKbError::Validation(_))));
    }

    #[test]
    fn reports_every_defect_not_just_the_first() {
        let concepts = "x\ta\t\n1\t\t\n1\tb\t\n1\tc\t\n"; // bad id, empty name, dup raw id
        let rels = "zz\t1\n9\t9\n"; // bad id (×1 line), unknown ids (×1 line, both ends)
        match from_tsv(concepts, rels) {
            Err(MedKbError::Validation(r)) => {
                assert_eq!(r.len(), 6, "{r}");
                assert!(r.defects().iter().any(|d| d.document == "concepts"));
                assert!(r.defects().iter().any(|d| d.document == "relationships"));
            }
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let t = GeneratedTerminology::generate(&SnomedConfig::tiny(9));
        let dir = std::env::temp_dir().join(format!("medkb-rf2-test-{}", std::process::id()));
        save_dir(&t.ekg, &dir).unwrap();
        let back = load_dir(&dir).unwrap();
        assert_eq!(back.len(), t.ekg.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shortcuts_not_exported() {
        let mut ekg = crate::figures::paper_fragment().ekg;
        let deep = ekg.lookup_name("chronic kidney disease stage 1 due to hypertension")[0];
        let kd = ekg.lookup_name("kidney disease")[0];
        ekg.add_shortcut(deep, kd, 3).unwrap();
        let (c, r) = to_tsv(&ekg);
        let back = from_tsv(&c, &r).unwrap();
        assert_eq!(back.shortcut_count(), 0);
        assert_eq!(back.edge_count(), ekg.edge_count() - 1);
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Malformed input must produce an error, never a panic.
            #[test]
            fn prop_from_tsv_never_panics(
                concepts in "[\\x20-\\x7e\\t\\n]{0,200}",
                rels in "[\\x20-\\x7e\\t\\n]{0,120}",
            ) {
                let _ = from_tsv(&concepts, &rels);
            }

            /// Non-ASCII input (combining marks, CJK, control chars) must
            /// error cleanly too, never panic.
            #[test]
            fn prop_from_tsv_never_panics_unicode(
                concepts in "([\\x20-\\x7e\\t\\n]|.){0,160}",
                rels in "([\\x20-\\x7e\\t\\n]|.){0,80}",
            ) {
                let _ = from_tsv(&concepts, &rels);
            }

            /// Raw bytes (decoded lossily, as an external tool would) never
            /// panic the loader.
            #[test]
            fn prop_from_tsv_never_panics_bytes(
                concepts in proptest::collection::vec(any::<u8>(), 0..256),
                rels in proptest::collection::vec(any::<u8>(), 0..128),
            ) {
                let c = String::from_utf8_lossy(&concepts);
                let r = String::from_utf8_lossy(&rels);
                let _ = from_tsv(&c, &r);
            }

            /// Structurally valid random inputs round-trip or error cleanly.
            #[test]
            fn prop_valid_lines_roundtrip(names in proptest::collection::vec("[a-z]{1,8}", 1..10)) {
                let mut distinct: Vec<String> = names.clone();
                distinct.sort();
                distinct.dedup();
                let mut concepts = String::new();
                let mut rels = String::new();
                for (i, n) in distinct.iter().enumerate() {
                    concepts.push_str(&format!("{i}\t{n}-{i}\t\n"));
                    if i > 0 {
                        rels.push_str(&format!("{i}\t{}\n", i - 1));
                    }
                }
                let g = from_tsv(&concepts, &rels).expect("chain is valid");
                prop_assert_eq!(g.len(), distinct.len());
            }
        }
    }
}