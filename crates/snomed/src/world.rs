//! The assembled experimental world: terminology + oracle + MED KB + gold
//! mapping.
//!
//! The paper's *MED* data set is proprietary (§7.1), so [`MedWorld`]
//! generates an equivalent: KB instances are sampled from the terminology's
//! finding and drug hierarchies, and their *names* are perturbed with the
//! controlled mix that produces Table 1's matcher behaviour:
//!
//! | shape       | name derivation                              | recovered by |
//! |-------------|----------------------------------------------|--------------|
//! | `Exact`     | primary name or a registered synonym, verbatim | EXACT        |
//! | `Typo`      | ≤ 2 character edits                           | EDIT (τ = 2) |
//! | `Reworded`  | colloquial word swap / word reorder           | EMBEDDING    |
//! | `Unmappable`| fresh name with no terminology counterpart    | nobody (trap)|
//!
//! Typo'd and reworded names are re-rolled if they collide with a real
//! terminology name, so EXACT matching stays 100%-precise by construction —
//! as in the paper.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use medkb_kb::{Kb, KbBuilder};
use medkb_ontology::{context::generate_contexts, med::med_ontology, ContextSpec};
use medkb_text::normalize;
use medkb_types::{ContextId, ExtConceptId, IdVec, InstanceId};

use crate::config::WorldConfig;
use crate::generator::{GeneratedTerminology, Hierarchy};
use crate::oracle::{ContextTag, Oracle};
use crate::vocab;

/// How an instance's name was derived from its concept (gold knowledge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameShape {
    /// Verbatim primary name.
    Exact,
    /// Verbatim registered synonym.
    Synonym,
    /// 1–2 character edits of the primary name.
    Typo,
    /// Colloquial swap or reorder; only embeddings can bridge it.
    Reworded,
    /// No terminology counterpart exists.
    Unmappable,
}

/// Gold provenance of one KB instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceOrigin {
    /// The true external concept, if any.
    pub concept: Option<ExtConceptId>,
    /// How the name was derived.
    pub shape: NameShape,
}

/// The full synthetic experimental world.
#[derive(Debug, Clone)]
pub struct MedWorld {
    /// The external terminology with ground-truth metadata.
    pub terminology: GeneratedTerminology,
    /// The SME-replacing relevance oracle.
    pub oracle: Oracle,
    /// The MED knowledge base (ontology + instances + triples).
    pub kb: Kb,
    /// Gold provenance per instance.
    pub origins: IdVec<InstanceId, InstanceOrigin>,
    /// All contexts of the MED ontology.
    pub contexts: Vec<ContextSpec>,
    /// Context → semantic tag, derived from relationship names.
    pub context_tags: HashMap<ContextId, ContextTag>,
    /// The configuration the world was generated from.
    pub config: WorldConfig,
}

impl MedWorld {
    /// Generate a world from `config`.
    pub fn generate(config: &WorldConfig) -> Self {
        let terminology = GeneratedTerminology::generate(&config.snomed);
        let oracle = Oracle::derive(&terminology, config.seed ^ 0x0BAC_1E5E);
        let ontology = med_ontology();
        let contexts = generate_contexts(&ontology);
        let context_tags: HashMap<ContextId, ContextTag> = contexts
            .iter()
            .map(|c| {
                let rel = ontology.relationship(c.relationship);
                let domain = ontology.concept_name(rel.domain);
                (c.id, ContextTag::from_relationship(domain, &rel.name))
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut kb = KbBuilder::new(ontology);
        let onto = kb.ontology();
        let c_finding = onto.lookup_concept("Finding").unwrap();
        let c_symptom = onto.lookup_concept("Symptom").unwrap();
        let c_disease = onto.lookup_concept("Disease").unwrap();
        let c_drug = onto.lookup_concept("Drug").unwrap();
        let c_indication = onto.lookup_concept("Indication").unwrap();
        let c_adverse = onto.lookup_concept("AdverseEffect").unwrap();
        let r_treat = onto.lookup_relationship("Drug-treat-Indication").unwrap();
        let r_cause = onto.lookup_relationship("Drug-cause-Risk").unwrap();
        let r_ind_finding =
            onto.lookup_relationship("Indication-hasFinding-Finding").unwrap();
        let r_risk_finding = onto.lookup_relationship("Risk-hasFinding-Finding").unwrap();

        // —— Sample source concepts (depth ≥ 2: concrete conditions and
        // products, not hierarchy heads) ——
        let findings = weighted_sample(
            &mut rng,
            &terminology.of_hierarchy_below(Hierarchy::ClinicalFinding, 2),
            |c| terminology.meta[c].popularity,
            config.finding_instances,
        );
        let drugs = weighted_sample(
            &mut rng,
            &terminology.of_hierarchy_below(Hierarchy::PharmaceuticalProduct, 2),
            |c| terminology.meta[c].popularity,
            config.drug_instances,
        );

        // —— Create instances with perturbed names ——
        let mut origins: Vec<InstanceOrigin> = Vec::new();
        let mut finding_instances: Vec<(InstanceId, ExtConceptId)> = Vec::new();
        let mut used_instance_names: HashSet<String> = HashSet::new();
        let ekg = &terminology.ekg;

        let spawn = |kb: &mut KbBuilder,
                         rng: &mut StdRng,
                         origins: &mut Vec<InstanceOrigin>,
                         used: &mut HashSet<String>,
                         src: ExtConceptId,
                         onto_concept,
                         cfg: &WorldConfig|
         -> Option<InstanceId> {
            let roll: f64 = rng.gen();
            let primary = ekg.name(src).to_string();
            let (name, shape, mapped) = if roll < cfg.exact_name_rate {
                // Only synonyms that resolve uniquely back to the source
                // concept are usable (abbreviations can collide, and an
                // ambiguous synonym would break EXACT's by-construction
                // 100% precision).
                let syns: Vec<&str> = ekg
                    .synonyms(src)
                    .filter(|s| ekg.lookup_name(s) == [src])
                    .collect();
                if !syns.is_empty() && rng.gen_bool(0.35) {
                    (syns[rng.gen_range(0..syns.len())].to_string(), NameShape::Synonym, true)
                } else {
                    (primary.clone(), NameShape::Exact, true)
                }
            } else if roll < cfg.exact_name_rate + cfg.typo_name_rate {
                let mut t = vocab::typo(rng, &primary);
                // Re-roll typos that collide with a real terminology name
                // (keeps EXACT at precision 100, as in the paper).
                for _ in 0..8 {
                    if ekg.lookup_name(&t).is_empty() {
                        break;
                    }
                    t = vocab::typo(rng, &primary);
                }
                (t, NameShape::Typo, true)
            } else if roll < cfg.exact_name_rate + cfg.typo_name_rate + cfg.reword_name_rate {
                let mut t = vocab::reword(rng, &primary);
                if !ekg.lookup_name(&t).is_empty() {
                    t = format!("{t} episode");
                }
                (t, NameShape::Reworded, true)
            } else {
                // Unmappable trap: a fresh name absent from the terminology.
                let mut t;
                loop {
                    t = format!(
                        "{}{} syndrome",
                        vocab::GENUS_STARTS[rng.gen_range(0..vocab::GENUS_STARTS.len())],
                        vocab::SPECIES[rng.gen_range(0..vocab::SPECIES.len())]
                    );
                    if ekg.lookup_name(&t).is_empty() {
                        break;
                    }
                }
                (t, NameShape::Unmappable, false)
            };
            if !used.insert(normalize(&name)) {
                return None; // KB names unique; skip duplicates
            }
            let id = kb.instance(&name, onto_concept);
            origins.push(InstanceOrigin {
                concept: mapped.then_some(src),
                shape,
            });
            Some(id)
        };

        for src in findings {
            let onto_concept = match rng.gen_range(0..4) {
                0 => c_symptom,
                1 => c_disease,
                _ => c_finding,
            };
            if let Some(id) =
                spawn(&mut kb, &mut rng, &mut origins, &mut used_instance_names, src, onto_concept, config)
            {
                finding_instances.push((id, src));
            }
        }
        let mut drug_instance_ids: Vec<(InstanceId, ExtConceptId)> = Vec::new();
        for src in drugs {
            if let Some(id) =
                spawn(&mut kb, &mut rng, &mut origins, &mut used_instance_names, src, c_drug, config)
            {
                drug_instance_ids.push((id, src));
            }
        }

        // —— Relation triples: drug → indication → finding, drug → risk →
        // finding, biased by oracle affinity so the KB is plausible ——
        let treat_pool: Vec<(InstanceId, ExtConceptId)> = finding_instances
            .iter()
            .filter(|&&(_, c)| oracle.affinity(c, ContextTag::Treatment) > 0.45)
            .copied()
            .collect();
        let risk_pool: Vec<(InstanceId, ExtConceptId)> = finding_instances
            .iter()
            .filter(|&&(_, c)| oracle.affinity(c, ContextTag::Risk) > 0.45)
            .copied()
            .collect();
        for &(drug_id, _) in &drug_instance_ids {
            let n_ind = sample_count(&mut rng, config.indications_per_drug);
            for k in 0..n_ind {
                if treat_pool.is_empty() {
                    break;
                }
                let (f_id, f_src) = treat_pool[rng.gen_range(0..treat_pool.len())];
                // Realistic textual title for the indication row.
                let ind_name = format!(
                    "{} therapy course {k}.{}",
                    terminology.ekg.name(f_src),
                    kb.instance_count()
                );
                let ind = kb.instance(&ind_name, c_indication);
                origins.push(InstanceOrigin { concept: None, shape: NameShape::Unmappable });
                kb.triple(drug_id, r_treat, ind);
                kb.triple(ind, r_ind_finding, f_id);
            }
            let n_risk = sample_count(&mut rng, config.risks_per_drug);
            for k in 0..n_risk {
                if risk_pool.is_empty() {
                    break;
                }
                let (f_id, f_src) = risk_pool[rng.gen_range(0..risk_pool.len())];
                let risk_name = format!(
                    "{} adverse reaction report {k}.{}",
                    terminology.ekg.name(f_src),
                    kb.instance_count()
                );
                let risk = kb.instance(&risk_name, c_adverse);
                origins.push(InstanceOrigin { concept: None, shape: NameShape::Unmappable });
                kb.triple(drug_id, r_cause, risk);
                kb.triple(risk, r_risk_finding, f_id);
            }
        }

        let kb = kb.build().expect("generated KB must satisfy the ontology");
        let origins: IdVec<InstanceId, InstanceOrigin> = origins.into_iter().collect();
        debug_assert_eq!(origins.len(), kb.instance_count());

        Self { terminology, oracle, kb, origins, contexts, context_tags, config: config.clone() }
    }

    /// The semantic tag of an ontology context.
    pub fn tag_of(&self, context: ContextId) -> ContextTag {
        self.context_tags.get(&context).copied().unwrap_or(ContextTag::General)
    }

    /// The gold `(instance, concept)` mapping pairs (instances that truly
    /// correspond to a terminology concept).
    pub fn gold_mappings(&self) -> Vec<(InstanceId, ExtConceptId)> {
        self.origins
            .iter()
            .filter_map(|(id, o)| o.concept.map(|c| (id, c)))
            .collect()
    }

    /// Instances by name shape.
    pub fn instances_with_shape(&self, shape: NameShape) -> Vec<InstanceId> {
        self.origins
            .iter()
            .filter(|(_, o)| o.shape == shape)
            .map(|(id, _)| id)
            .collect()
    }

    /// Finding-hierarchy concepts that have *no* KB instance — the
    /// "pyelectasia" situation that triggers Scenario 1 relaxation.
    pub fn unrepresented_findings(&self) -> Vec<ExtConceptId> {
        let mapped: HashSet<ExtConceptId> =
            self.origins.iter().filter_map(|(_, o)| o.concept).collect();
        self.terminology
            .of_hierarchy(Hierarchy::ClinicalFinding)
            .into_iter()
            .filter(|c| !mapped.contains(c))
            .collect()
    }

    /// The context of the canonical treatment question
    /// (`Indication-hasFinding-Finding`).
    pub fn treatment_context(&self) -> ContextId {
        self.contexts
            .iter()
            .find(|c| c.label == "Indication-hasFinding-Finding")
            .map(|c| c.id)
            .expect("MED ontology has the Figure 1 contexts")
    }

    /// The context of the canonical risk question (`Risk-hasFinding-Finding`).
    pub fn risk_context(&self) -> ContextId {
        self.contexts
            .iter()
            .find(|c| c.label == "Risk-hasFinding-Finding")
            .map(|c| c.id)
            .expect("MED ontology has the Figure 1 contexts")
    }
}

/// Sample `n` distinct items from `pool` with probability proportional to
/// `weight`, via repeated weighted draws with rejection.
fn weighted_sample<F: Fn(ExtConceptId) -> f64>(
    rng: &mut StdRng,
    pool: &[ExtConceptId],
    weight: F,
    n: usize,
) -> Vec<ExtConceptId> {
    if pool.is_empty() {
        return Vec::new();
    }
    let total: f64 = pool.iter().map(|&c| weight(c)).sum();
    let mut chosen: HashSet<ExtConceptId> = HashSet::new();
    let mut out = Vec::new();
    let budget = n.min(pool.len());
    let mut attempts = 0usize;
    while out.len() < budget && attempts < n * 40 + 100 {
        attempts += 1;
        let mut target = rng.gen::<f64>() * total;
        let mut pick = pool[pool.len() - 1];
        for &c in pool {
            target -= weight(c);
            if target <= 0.0 {
                pick = c;
                break;
            }
        }
        if chosen.insert(pick) {
            out.push(pick);
        }
    }
    // Fill up uniformly if rejection stalled on a heavy head.
    if out.len() < budget {
        for &c in pool {
            if out.len() >= budget {
                break;
            }
            if chosen.insert(c) {
                out.push(c);
            }
        }
    }
    out
}

/// Poisson-ish count with the given mean (geometric-style sampling is fine
/// for workload shaping).
fn sample_count(rng: &mut StdRng, mean: f64) -> usize {
    let base = mean.floor() as usize;
    base + usize::from(rng.gen_bool(mean - base as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> MedWorld {
        MedWorld::generate(&WorldConfig::tiny(31))
    }

    #[test]
    fn world_generates_and_validates() {
        let w = tiny_world();
        assert!(w.kb.instance_count() > 100);
        assert!(w.kb.triple_count() > 50);
        assert_eq!(w.origins.len(), w.kb.instance_count());
        assert_eq!(w.contexts.len(), 58);
    }

    #[test]
    fn shapes_follow_configured_rates_roughly() {
        let w = MedWorld::generate(&WorldConfig {
            finding_instances: 1200,
            drug_instances: 0,
            indications_per_drug: 0.0,
            risks_per_drug: 0.0,
            ..WorldConfig::tiny(5)
        });
        let total = w.kb.instance_count() as f64;
        let exact = (w.instances_with_shape(NameShape::Exact).len()
            + w.instances_with_shape(NameShape::Synonym).len()) as f64;
        let rate = exact / total;
        assert!(
            (rate - w.config.exact_name_rate).abs() < 0.06,
            "exact-ish rate {rate} vs configured {}",
            w.config.exact_name_rate
        );
    }

    #[test]
    fn exact_instances_resolve_in_terminology() {
        let w = tiny_world();
        for id in w.instances_with_shape(NameShape::Exact) {
            let name = w.kb.name(id);
            let hits = w.terminology.ekg.lookup_name(name);
            let gold = w.origins[id].concept.unwrap();
            assert!(hits.contains(&gold), "{name} should resolve to its gold concept");
        }
    }

    #[test]
    fn typo_instances_do_not_resolve_exactly() {
        let w = tiny_world();
        for id in w.instances_with_shape(NameShape::Typo) {
            let name = w.kb.name(id);
            assert!(
                w.terminology.ekg.lookup_name(name).is_empty(),
                "typo name {name:?} collides with a real concept"
            );
        }
    }

    #[test]
    fn unmappable_instances_have_no_gold_concept() {
        let w = tiny_world();
        let unmappable = w.instances_with_shape(NameShape::Unmappable);
        assert!(!unmappable.is_empty());
        for id in unmappable {
            assert_eq!(w.origins[id].concept, None);
        }
    }

    #[test]
    fn triples_answer_treatment_questions() {
        let w = tiny_world();
        let r_treat = w.kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
        let r_has =
            w.kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
        // Some finding must be reachable drug -> indication -> finding.
        let mut reachable = 0;
        for (drug, _) in w.kb.instances() {
            for ind in w.kb.objects(drug, r_treat) {
                reachable += w.kb.objects(ind, r_has).len();
            }
        }
        assert!(reachable > 0);
    }

    #[test]
    fn context_tags_cover_figure1_contexts() {
        let w = tiny_world();
        assert_eq!(w.tag_of(w.treatment_context()), ContextTag::Treatment);
        assert_eq!(w.tag_of(w.risk_context()), ContextTag::Risk);
    }

    #[test]
    fn unrepresented_findings_exist() {
        let w = tiny_world();
        assert!(!w.unrepresented_findings().is_empty());
    }

    #[test]
    fn determinism() {
        let a = MedWorld::generate(&WorldConfig::tiny(77));
        let b = MedWorld::generate(&WorldConfig::tiny(77));
        assert_eq!(a.kb.instance_count(), b.kb.instance_count());
        for (id, _) in a.kb.instances() {
            assert_eq!(a.kb.name(id), b.kb.name(id));
        }
    }
}
