//! Deterministic medical-ish vocabulary pools and name composition.
//!
//! Names are composed from pools rather than sampled from real SNOMED CT
//! (which is license-gated); the composition rules are chosen so that the
//! phenomena the paper's matchers must cope with all occur:
//!
//! * multi-word names with modifier stacks ("chronic renal inflammation"),
//! * registered synonyms with organ-word swaps and re-orderings,
//! * abbreviations ("CRI"),
//! * antonym pairs within edit distance ≤ 2 of each other
//!   ("hyperkalemia"/"hypokalemia") — these stress both the EDIT matcher's
//!   precision (Table 1) and the context-free baselines (Table 2), exactly
//!   like the paper's "hyperpyrexia"/"hypothermia" example, and
//! * colloquial word substitutions that only co-occur in free text
//!   (recoverable by trained embeddings, not by string matching).

use rand::Rng;

/// Condition modifiers (severity/chronicity/etiology).
pub const MODIFIERS: &[&str] = &[
    "acute", "chronic", "recurrent", "congenital", "idiopathic", "severe", "mild",
    "progressive", "benign", "malignant", "primary", "secondary", "diffuse", "focal",
    "transient", "persistent", "juvenile", "atypical", "familial", "drug induced",
    "postoperative", "traumatic", "infective", "allergic", "autoimmune", "degenerative",
    "obstructive", "ischemic", "hemorrhagic", "interstitial",
];

/// `(anatomical adjective, common organ word)` pairs; the second member is
/// the synonym-swap form ("renal inflammation" ↔ "inflammation of kidney").
pub const ORGANS: &[(&str, &str)] = &[
    ("renal", "kidney"),
    ("cardiac", "heart"),
    ("hepatic", "liver"),
    ("pulmonary", "lung"),
    ("gastric", "stomach"),
    ("neural", "nerve"),
    ("cerebral", "brain"),
    ("dermal", "skin"),
    ("ocular", "eye"),
    ("aural", "ear"),
    ("nasal", "nose"),
    ("pharyngeal", "throat"),
    ("vascular", "blood vessel"),
    ("skeletal", "bone"),
    ("muscular", "muscle"),
    ("pancreatic", "pancreas"),
    ("thyroid", "thyroid gland"),
    ("splenic", "spleen"),
    ("intestinal", "bowel"),
    ("esophageal", "esophagus"),
    ("vesical", "bladder"),
    ("uterine", "uterus"),
    ("prostatic", "prostate"),
    ("lymphatic", "lymph node"),
    ("articular", "joint"),
    ("spinal", "spine"),
    ("bronchial", "airway"),
    ("pleural", "pleura"),
    ("pericardial", "pericardium"),
    ("retinal", "retina"),
];

/// Condition head nouns.
pub const CONDITIONS: &[&str] = &[
    "inflammation", "infection", "degeneration", "dysfunction", "insufficiency",
    "obstruction", "lesion", "pain", "swelling", "hemorrhage", "stenosis", "dilation",
    "atrophy", "hypertrophy", "fibrosis", "edema", "necrosis", "ulceration", "rupture",
    "spasm", "paralysis", "neoplasm", "cyst", "abscess", "malformation", "prolapse",
    "dysplasia", "hyperplasia", "calcification", "erosion",
];

/// Roots for antonym trap pairs: `hyper<root>` / `hypo<root>` differ by
/// exactly 2 edits, so the EDIT matcher (τ = 2) can confuse them.
pub const ANTONYM_ROOTS: &[&str] = &[
    "tension", "glycemia", "kalemia", "natremia", "thermia", "calcemia", "volemia",
    "capnia", "phosphatemia", "magnesemia", "uricemia", "lipidemia",
];

/// Drug name syllables.
pub const DRUG_STARTS: &[&str] = &[
    "al", "be", "cor", "dex", "eli", "fen", "glu", "hal", "ib", "lor", "met", "nor",
    "oxa", "pra", "quin", "ral", "sel", "tir", "umb", "vel", "xan", "zol",
];
/// Drug name middles.
pub const DRUG_MIDS: &[&str] =
    &["a", "i", "o", "u", "ar", "er", "ol", "an", "ex", "iv", "ud", "im"];
/// Drug name suffixes (class-flavoured).
pub const DRUG_ENDS: &[&str] = &[
    "pril", "olol", "statin", "mycin", "cillin", "zole", "profen", "mab", "nib", "vir",
    "sone", "azepam", "formin", "gliptin", "sartan", "dipine", "oxetine", "caine",
    "dronate", "tinib",
];

/// Organism genus prefixes and suffixes.
pub const GENUS_STARTS: &[&str] = &[
    "staphylo", "strepto", "entero", "myco", "lacto", "campylo", "pseudo", "acineto",
    "kleb", "borrel", "salmon", "legion",
];
/// Organism genus suffixes.
pub const GENUS_ENDS: &[&str] = &["coccus", "bacter", "bacillus", "monas", "siella", "spira"];
/// Organism species epithets.
pub const SPECIES: &[&str] = &[
    "aureus", "pyogenes", "coli", "pneumoniae", "fragilis", "mirabilis", "faecalis",
    "cereus", "subtilis", "vulgaris", "enterica", "canis",
];

/// Procedure head nouns.
pub const PROCEDURES: &[&str] = &[
    "biopsy", "resection", "bypass", "transplantation", "imaging", "endoscopy",
    "drainage", "repair", "replacement", "screening", "ablation", "catheterization",
];

/// Colloquial word substitutions. Left: terminology word; right: colloquial
/// variant used (a) by the corpus generator in patient-education sentences
/// and (b) by the reworded instance-name perturbation. Only embeddings
/// trained on the corpus can bridge these.
pub const COLLOQUIAL: &[(&str, &str)] = &[
    ("inflammation", "irritation"),
    ("hemorrhage", "bleeding"),
    ("edema", "puffiness"),
    ("pain", "ache"),
    ("infection", "bug"),
    ("neoplasm", "growth"),
    ("dysfunction", "trouble"),
    ("insufficiency", "weakness"),
    ("stenosis", "narrowing"),
    ("rupture", "tear"),
];

/// Look up the colloquial variant of a terminology word, if any.
pub fn colloquial_of(word: &str) -> Option<&'static str> {
    COLLOQUIAL.iter().find(|&&(w, _)| w == word).map(|&(_, c)| c)
}

/// Pick one element of a non-empty slice.
pub fn pick<'a, T: ?Sized>(rng: &mut impl Rng, pool: &'a [&'a T]) -> &'a T {
    pool[rng.gen_range(0..pool.len())]
}

/// Compose a drug name (`start [mid] end`).
pub fn drug_name(rng: &mut impl Rng) -> String {
    let start = pick(rng, DRUG_STARTS);
    let end = pick(rng, DRUG_ENDS);
    if rng.gen_bool(0.6) {
        format!("{start}{}{end}", pick(rng, DRUG_MIDS))
    } else {
        format!("{start}{end}")
    }
}

/// Compose an organism binomial name.
pub fn organism_name(rng: &mut impl Rng) -> String {
    format!("{}{} {}", pick(rng, GENUS_STARTS), pick(rng, GENUS_ENDS), pick(rng, SPECIES))
}

/// The abbreviation of a multi-word name ("chronic renal inflammation" →
/// "cri"). Only meaningful for ≥ 3 words.
pub fn abbreviation(name: &str) -> Option<String> {
    let words: Vec<&str> = name.split_whitespace().collect();
    if words.len() < 3 {
        return None;
    }
    Some(words.iter().filter_map(|w| w.chars().next()).collect())
}

/// Organ-swap synonym: replace the anatomical adjective with
/// "<rest> of <organ>" ("renal inflammation" → "inflammation of kidney").
pub fn organ_swap_synonym(name: &str) -> Option<String> {
    let words: Vec<&str> = name.split_whitespace().collect();
    for (i, w) in words.iter().enumerate() {
        if let Some(&(_, organ)) = ORGANS.iter().find(|&&(adj, _)| adj == *w) {
            let mut rest: Vec<&str> = Vec::new();
            rest.extend_from_slice(&words[..i]);
            rest.extend_from_slice(&words[i + 1..]);
            if rest.is_empty() {
                return None;
            }
            return Some(format!("{} of {organ}", rest.join(" ")));
        }
    }
    None
}

/// Reorder synonym: move the first modifier to the back ("chronic renal
/// inflammation" → "renal inflammation chronic"), mirroring the comma forms
/// real terminologies register.
pub fn reorder_synonym(name: &str) -> Option<String> {
    let words: Vec<&str> = name.split_whitespace().collect();
    if words.len() < 3 || !MODIFIERS.contains(&words[0]) {
        return None;
    }
    Some(format!("{} {}", words[1..].join(" "), words[0]))
}

/// Apply a random small typo (1–2 edits) to a name.
pub fn typo(rng: &mut impl Rng, name: &str) -> String {
    let mut chars: Vec<char> = name.chars().collect();
    let edits = if rng.gen_bool(0.5) { 1 } else { 2 };
    for _ in 0..edits {
        if chars.len() < 3 {
            break;
        }
        let i = rng.gen_range(1..chars.len() - 1);
        match rng.gen_range(0..3) {
            0 => {
                // delete
                chars.remove(i);
            }
            1 => {
                // duplicate (insertion)
                let c = chars[i];
                chars.insert(i, c);
            }
            _ => {
                // substitute with a nearby letter
                let c = chars[i];
                if c.is_ascii_lowercase() {
                    let shifted = ((c as u8 - b'a' + 1) % 26) + b'a';
                    chars[i] = shifted as char;
                }
            }
        }
    }
    chars.into_iter().collect()
}

/// Reword a name so that only embeddings can recover it: swap a word for
/// its colloquial variant if possible, otherwise reorder aggressively
/// (last word first, no registered synonym matches that form).
pub fn reword(rng: &mut impl Rng, name: &str) -> String {
    let words: Vec<&str> = name.split_whitespace().collect();
    let swap_targets: Vec<usize> =
        words.iter().enumerate().filter(|(_, w)| colloquial_of(w).is_some()).map(|(i, _)| i).collect();
    if !swap_targets.is_empty() {
        let i = swap_targets[rng.gen_range(0..swap_targets.len())];
        let mut out: Vec<&str> = words.clone();
        out[i] = colloquial_of(words[i]).unwrap();
        return out.join(" ");
    }
    if words.len() >= 2 {
        let mut out = vec![*words.last().unwrap()];
        out.extend_from_slice(&words[..words.len() - 1]);
        return out.join(" ");
    }
    format!("{name} condition")
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_text::levenshtein;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn antonym_pairs_within_two_edits() {
        for root in ANTONYM_ROOTS {
            let a = format!("hyper{root}");
            let b = format!("hypo{root}");
            assert!(levenshtein(&a, &b) <= 2, "{a} vs {b}");
        }
    }

    #[test]
    fn drug_names_look_like_drugs() {
        let mut r = rng();
        for _ in 0..20 {
            let n = drug_name(&mut r);
            assert!(n.len() >= 5, "{n}");
            assert!(n.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn abbreviation_requires_three_words() {
        assert_eq!(abbreviation("chronic renal inflammation"), Some("cri".into()));
        assert_eq!(abbreviation("renal inflammation"), None);
    }

    #[test]
    fn organ_swap_synonym_rewrites_adjective() {
        assert_eq!(
            organ_swap_synonym("chronic renal inflammation"),
            Some("chronic inflammation of kidney".into())
        );
        assert_eq!(organ_swap_synonym("plain pain"), None);
        assert_eq!(organ_swap_synonym("renal"), None);
    }

    #[test]
    fn reorder_synonym_moves_leading_modifier() {
        assert_eq!(
            reorder_synonym("chronic renal inflammation"),
            Some("renal inflammation chronic".into())
        );
        assert_eq!(reorder_synonym("renal inflammation"), None);
        assert_eq!(reorder_synonym("fever of unknown origin"), None); // "fever" not a modifier
    }

    #[test]
    fn typo_stays_within_two_edits() {
        let mut r = rng();
        for _ in 0..50 {
            let t = typo(&mut r, "pancreatic insufficiency");
            assert!(levenshtein(&t, "pancreatic insufficiency") <= 2, "{t}");
        }
    }

    #[test]
    fn reword_uses_colloquial_when_available() {
        let mut r = rng();
        let out = reword(&mut r, "renal pain");
        assert!(out == "renal ache", "{out}");
        // No colloquial word: falls back to reorder.
        let out = reword(&mut r, "chronic renal fibrosis");
        assert_eq!(out, "fibrosis chronic renal");
    }

    #[test]
    fn colloquial_lookup() {
        assert_eq!(colloquial_of("pain"), Some("ache"));
        assert_eq!(colloquial_of("fibrosis"), None);
    }

    #[test]
    fn organism_names_are_binomial() {
        let mut r = rng();
        let n = organism_name(&mut r);
        assert_eq!(n.split_whitespace().count(), 2);
    }
}
