//! Hand-built terminology fragments reproducing the paper's worked
//! examples (Figures 4, 5, 6 and the running narrative examples).
//!
//! These pin exact numeric behaviour:
//!
//! * **Figure 4** — the craniofacial-pain subtree with per-context direct
//!   mention counts chosen so Eq. 2 yields the published totals:
//!   `freq("craniofacial pain") = 18878` and
//!   `freq("pain of head and neck region") = 18878 + 283 + 3 = 19164` in
//!   the `Indication-hasFinding-Finding` context, and `1656` in the
//!   `Risk-hasFinding-Finding` context.
//! * **Figure 5** — "chronic kidney disease stage 1 due to hypertension"
//!   sits 3 hops below the flagged "kidney disease"; ingestion must add a
//!   1-hop shortcut carrying original distance 3.
//! * **Figure 6** — "pneumonia" reaches "lower respiratory tract
//!   infection" in 4 hops: 3 generalizations + 1 specialization.
//! * the **introduction examples** — "pertussis" far from the flagged
//!   "bronchitis"; the "psychogenic fever" / "hyperpyrexia" /
//!   "hypothermia" context trap; "pyelectasia" near the flagged
//!   "kidney disease" / "nephropathy" (Scenario 1 of §6.1).

use medkb_ekg::{Ekg, EkgBuilder};

/// Direct (non-recursive) mention counts of one Figure 4 concept:
/// `(name, treatment-context count, risk-context count)`.
pub type DirectCounts = (&'static str, u64, u64);

/// A hand-built fragment of the paper's SNOMED CT examples.
#[derive(Debug, Clone)]
pub struct PaperFragment {
    /// The terminology graph.
    pub ekg: Ekg,
    /// Figure 4's direct mention counts. Summing per Eq. 2 yields the
    /// published totals (see module docs).
    pub fig4_direct_counts: Vec<DirectCounts>,
    /// Names of concepts with a corresponding KB instance (flagged).
    pub flagged: Vec<&'static str>,
}

/// Subsumption edges (child, parent) of the fragment.
pub const FRAGMENT_EDGES: [(&str, &str); 26] = [
    ("clinical finding", "snomed ct concept"),
    // Figure 4: pain subtree.
    ("pain", "clinical finding"),
    ("pain of head and neck region", "pain"),
    ("craniofacial pain", "pain of head and neck region"),
    ("pain in throat", "pain of head and neck region"),
    ("headache", "craniofacial pain"),
    ("frequent headache", "headache"),
    // Figure 5: chronic kidney disease chain.
    ("kidney disease", "clinical finding"),
    ("chronic kidney disease", "kidney disease"),
    ("chronic kidney disease stage 1", "chronic kidney disease"),
    (
        "chronic kidney disease stage 1 due to hypertension",
        "chronic kidney disease stage 1",
    ),
    ("nephropathy", "kidney disease"),
    ("disorder of renal pelvis", "kidney disease"),
    ("pyelectasia", "disorder of renal pelvis"),
    ("renal impairment", "kidney disease"),
    // Figure 6: pneumonia / LRTI (3 ups + 1 down).
    ("respiratory disorder", "clinical finding"),
    ("lower respiratory tract infection", "respiratory disorder"),
    ("lung disease", "respiratory disorder"),
    ("pneumonitis", "lung disease"),
    ("pneumonia", "pneumonitis"),
    ("bronchitis", "lower respiratory tract infection"),
    // Pertussis, deliberately far from bronchitis (intro example).
    ("infectious disease", "clinical finding"),
    ("bacterial infectious disease", "infectious disease"),
    ("bordetella infection", "bacterial infectious disease"),
    ("pertussis", "bordetella infection"),
    // Psychogenic fever trap (§1, Exploiting the query context).
    ("disorder of body temperature", "clinical finding"),
];

/// Additional body-temperature edges (kept separate for readability).
pub const TEMPERATURE_EDGES: [(&str, &str); 4] = [
    ("fever", "disorder of body temperature"),
    ("hyperpyrexia", "fever"),
    ("psychogenic fever", "hyperpyrexia"),
    ("hypothermia", "disorder of body temperature"),
];

/// Build the fragment.
pub fn paper_fragment() -> PaperFragment {
    let mut b = EkgBuilder::new();
    b.concept("snomed ct concept");
    for (child, parent) in FRAGMENT_EDGES.iter().chain(TEMPERATURE_EDGES.iter()) {
        b.is_a_named(child, parent);
    }
    let fever = b.concept("fever");
    b.synonym(fever, "pyrexia");
    let ekg = b.build().expect("the paper fragment is a valid rooted DAG");

    // Direct counts chosen so the Eq. 2 rollups hit the published numbers:
    //   Treatment: freq(headache) = 15000 + 3000 = 18000,
    //              freq(craniofacial pain) = 878 + 18000 = 18878,
    //              freq(pain of head and neck region)
    //                  = 3 + 18878 + 283 = 19164.
    //   Risk:      freq(craniofacial pain) = 400 + 700 + 300 = 1400,
    //              freq(pain of head and neck region)
    //                  = 56 + 1400 + 200 = 1656.
    let fig4_direct_counts = vec![
        ("frequent headache", 3000, 700),
        ("headache", 15000, 300),
        ("craniofacial pain", 878, 400),
        ("pain in throat", 283, 200),
        ("pain of head and neck region", 3, 56),
    ];

    let flagged = vec![
        "headache",
        "frequent headache",
        "craniofacial pain",
        "pain in throat",
        "pain of head and neck region",
        "kidney disease",
        "nephropathy",
        "renal impairment",
        "fever",
        "hyperpyrexia",
        "bronchitis",
        "lower respiratory tract infection",
        "pneumonia",
        "hypothermia",
    ];

    PaperFragment { ekg, fig4_direct_counts, flagged }
}

impl PaperFragment {
    /// Resolve a fragment concept by name (they are all unique).
    pub fn concept(&self, name: &str) -> medkb_types::ExtConceptId {
        let hits = self.ekg.lookup_name(name);
        assert!(
            hits.len() == 1,
            "fragment concept {name:?} should resolve uniquely, got {hits:?}"
        );
        hits[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_ekg::{lcs::lcs, path::path_between, PathSummary};

    #[test]
    fn fragment_builds_and_resolves() {
        let f = paper_fragment();
        assert!(f.ekg.len() > 25);
        for name in &f.flagged {
            f.concept(name);
        }
    }

    #[test]
    fn figure5_distance_is_three_hops() {
        let f = paper_fragment();
        let deep = f.concept("chronic kidney disease stage 1 due to hypertension");
        let kd = f.concept("kidney disease");
        assert_eq!(f.ekg.distance_to_ancestor(deep, kd), Some(3));
    }

    #[test]
    fn figure6_path_is_three_ups_one_down() {
        let f = paper_fragment();
        let pneumonia = f.concept("pneumonia");
        let lrti = f.concept("lower respiratory tract infection");
        let (path, out) = path_between(&f.ekg, pneumonia, lrti);
        assert_eq!(path, PathSummary { ups: 3, downs: 1 });
        assert_eq!(out.concepts, vec![f.concept("respiratory disorder")]);
        let (reverse, _) = path_between(&f.ekg, lrti, pneumonia);
        assert_eq!(reverse, PathSummary { ups: 1, downs: 3 });
    }

    #[test]
    fn pertussis_is_far_from_bronchitis() {
        let f = paper_fragment();
        let pertussis = f.concept("pertussis");
        let bronchitis = f.concept("bronchitis");
        let out = lcs(&f.ekg, pertussis, bronchitis);
        assert_eq!(out.concepts, vec![f.concept("clinical finding")]);
        assert!(out.total_distance() >= 6, "distance {}", out.total_distance());
    }

    #[test]
    fn psychogenic_fever_neighbors_include_both_temperature_extremes() {
        let f = paper_fragment();
        let pf = f.concept("psychogenic fever");
        let names: Vec<&str> =
            f.ekg.neighborhood(pf, 4).iter().map(|&(c, _)| f.ekg.name(c)).collect();
        assert!(names.contains(&"hyperpyrexia"));
        assert!(names.contains(&"hypothermia"), "{names:?}");
    }

    #[test]
    fn fig4_direct_counts_cover_the_subtree() {
        let f = paper_fragment();
        let treatment_total: u64 = f.fig4_direct_counts.iter().map(|&(_, t, _)| t).sum();
        let risk_total: u64 = f.fig4_direct_counts.iter().map(|&(_, _, r)| r).sum();
        assert_eq!(treatment_total, 19164, "Figure 4 Indication-context total");
        assert_eq!(risk_total, 1656, "Figure 4 Risk-context total");
    }

    #[test]
    fn pyelectasia_close_to_kidney_disease() {
        let f = paper_fragment();
        let p = f.concept("pyelectasia");
        let names: Vec<&str> =
            f.ekg.neighborhood(p, 2).iter().map(|&(c, _)| f.ekg.name(c)).collect();
        assert!(names.contains(&"kidney disease"));
    }

    #[test]
    fn fever_synonym_registered() {
        let f = paper_fragment();
        let fever = f.concept("fever");
        assert_eq!(f.ekg.lookup_name("pyrexia"), &[fever]);
    }
}
