//! A Gene-Ontology-flavoured terminology generator.
//!
//! §1 lists the Gene Ontology alongside SNOMED CT and UMLS as external
//! knowledge sources the approach can exploit. GO's shape differs from
//! SNOMED's: three sub-ontologies (biological process, molecular function,
//! cellular component), shorter names built from a compositional grammar
//! ("regulation of apoptosis", "atp binding"), and heavier multi-parenting.
//! Generating it through the same [`medkb_ekg::EkgBuilder`] demonstrates
//! that every algorithm in this repository is terminology-agnostic — it
//! only consumes the rooted DAG and the names.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use medkb_ekg::{Ekg, EkgBuilder};
use medkb_types::ExtConceptId;

/// Process roots for the biological-process branch.
const PROCESSES: &[&str] = &[
    "apoptosis", "cell division", "dna replication", "transcription", "translation",
    "glycolysis", "autophagy", "signal transduction", "protein folding", "ion transport",
    "lipid metabolism", "immune response", "angiogenesis", "chemotaxis", "meiosis",
];

/// Regulation-style prefixes applied to processes.
const REGULATORS: &[&str] =
    &["regulation of", "positive regulation of", "negative regulation of", "activation of"];

/// Binding partners for the molecular-function branch.
const LIGANDS: &[&str] = &[
    "atp", "dna", "rna", "calcium ion", "zinc ion", "heme", "ubiquitin", "actin",
    "gtp", "nad", "fatty acid", "receptor",
];

/// Activities for the molecular-function branch.
const ACTIVITIES: &[&str] =
    &["binding", "kinase activity", "transporter activity", "hydrolase activity"];

/// Compartments for the cellular-component branch.
const COMPARTMENTS: &[&str] = &[
    "nucleus", "mitochondrion", "ribosome", "golgi apparatus", "lysosome",
    "plasma membrane", "cytoskeleton", "endoplasmic reticulum", "vesicle", "chromosome",
];

/// Sub-structures of compartments.
const PARTS: &[&str] = &["membrane", "lumen", "matrix", "outer region", "inner region"];

/// Configuration of the GO-like generator.
#[derive(Debug, Clone)]
pub struct GoConfig {
    /// RNG seed.
    pub seed: u64,
    /// Approximate number of terms.
    pub terms: usize,
    /// Probability of a second parent (GO multi-parents aggressively).
    pub multi_parent_rate: f64,
}

impl Default for GoConfig {
    fn default() -> Self {
        Self { seed: 0x60_60, terms: 800, multi_parent_rate: 0.35 }
    }
}

/// Generate a GO-like terminology.
///
/// The root is `gene ontology term`; its three children are the classic
/// sub-ontology heads. Deeper terms compose regulators over processes,
/// ligands over activities, and parts over compartments.
pub fn generate(config: &GoConfig) -> Ekg {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = EkgBuilder::new();
    let root = b.concept("gene ontology term");
    let bp = b.concept("biological process");
    let mf = b.concept("molecular function");
    let cc = b.concept("cellular component");
    for head in [bp, mf, cc] {
        b.is_a(head, root);
    }

    // (id, name, branch 0/1/2) — the builder interns but does not expose
    // reverse lookup, so names ride along for composition.
    let mut members: Vec<(ExtConceptId, String, usize)> = Vec::new();

    for (i, p) in PROCESSES.iter().enumerate() {
        let c = b.concept(p);
        b.is_a(c, bp);
        if i % 3 == 0 {
            b.synonym(c, &format!("{p} process"));
        }
        members.push((c, p.to_string(), 0));
    }
    for a in ACTIVITIES {
        let c = b.concept(a);
        b.is_a(c, mf);
        members.push((c, a.to_string(), 1));
    }
    for comp in COMPARTMENTS {
        let c = b.concept(comp);
        b.is_a(c, cc);
        members.push((c, comp.to_string(), 2));
    }

    let mut used: std::collections::HashSet<String> =
        members.iter().map(|(_, n, _)| n.clone()).collect();
    let mut budget = config.terms.saturating_sub(4 + members.len());
    let mut attempts = 0usize;
    while budget > 0 && attempts < config.terms * 20 {
        attempts += 1;
        let idx = rng.gen_range(0..members.len());
        let (parent, parent_name, branch) = {
            let m = &members[idx];
            (m.0, m.1.clone(), m.2)
        };
        let name = match branch {
            0 => format!("{} {parent_name}", REGULATORS[rng.gen_range(0..REGULATORS.len())]),
            1 => format!("{} {parent_name}", LIGANDS[rng.gen_range(0..LIGANDS.len())]),
            _ => format!("{parent_name} {}", PARTS[rng.gen_range(0..PARTS.len())]),
        };
        if !used.insert(name.clone()) {
            continue;
        }
        let c = b.concept(&name);
        b.is_a(c, parent);
        if rng.gen_bool(config.multi_parent_rate) {
            // Second parent within the same branch (GO never crosses).
            let candidates: Vec<ExtConceptId> = members
                .iter()
                .filter(|(m, _, br)| *br == branch && *m != parent && *m != c)
                .map(|(m, _, _)| *m)
                .collect();
            if !candidates.is_empty() {
                b.is_a(c, candidates[rng.gen_range(0..candidates.len())]);
            }
        }
        members.push((c, name, branch));
        budget -= 1;
    }

    b.build().expect("GO-like terminology is a valid rooted DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_ekg::EkgStats;

    #[test]
    fn generates_the_three_sub_ontologies() {
        let g = generate(&GoConfig::default());
        assert_eq!(g.name(g.root()), "gene ontology term");
        for head in ["biological process", "molecular function", "cellular component"] {
            let id = g.lookup_name(head)[0];
            assert!(g.parents(id).iter().any(|e| e.to == g.root()));
            assert!(!g.children(id).is_empty(), "{head} is populated");
        }
    }

    #[test]
    fn reaches_requested_size_with_go_shape() {
        let g = generate(&GoConfig { terms: 500, ..GoConfig::default() });
        let stats = EkgStats::compute(&g);
        assert!(stats.concepts >= 400, "{stats}");
        assert!(stats.multi_parent > 30, "GO multi-parents aggressively: {stats}");
        assert!(stats.max_depth >= 3, "{stats}");
    }

    #[test]
    fn composed_names_nest() {
        let g = generate(&GoConfig::default());
        // Some regulation-of-regulation chains should exist.
        let nested = g
            .concepts()
            .filter(|&c| g.name(c).matches("regulation of").count() >= 2)
            .count();
        assert!(nested > 0, "no nested regulation terms generated");
    }

    #[test]
    fn deterministic() {
        let a = generate(&GoConfig::default());
        let b = generate(&GoConfig::default());
        assert_eq!(a.len(), b.len());
        for c in a.concepts() {
            assert_eq!(a.name(c), b.name(c));
        }
    }
}
