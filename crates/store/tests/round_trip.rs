//! Store round-trip and corruption-rejection tests.
//!
//! The bit-identity contract: `WorldStore::open_bytes(save_bytes(out))`
//! reconstructs an [`IngestOutput`] whose every persisted component —
//! graph, contexts, frequency/IC bit patterns, mappings, reachability
//! labels, mapper tables — equals the original. Corruption anywhere in
//! the file must come back as a `Validation` error, never a panic or a
//! silently different world.

use std::sync::Arc;

use medkb_core::{ingest, IngestOutput, MappingMethod, RelaxConfig};
use medkb_corpus::{CorpusConfig, CorpusGenerator, MentionCounts};
use medkb_embed::{SgnsConfig, SifModel, WordVectors};
use medkb_snomed::{MedWorld, WorldConfig};
use medkb_store::WorldStore;
use medkb_types::MedKbError;

fn tiny_world(seed: u64, mapping: MappingMethod) -> IngestOutput {
    let world = MedWorld::generate(&WorldConfig::tiny(seed));
    let generator = CorpusGenerator::new(&world.terminology, &world.oracle);
    let corpus = generator.generate(&CorpusConfig::tiny(seed ^ 0x11));
    let counts = MentionCounts::count(&corpus, &world.terminology.ekg);
    let sif = match mapping {
        MappingMethod::Embedding { .. } => {
            let wv = WordVectors::train(&corpus, &SgnsConfig::tiny(seed ^ 0x22));
            Some(Arc::new(SifModel::fit(wv, &corpus, 1e-3)))
        }
        _ => None,
    };
    let config = RelaxConfig { mapping, ..RelaxConfig::default() };
    ingest(&world.kb, world.terminology.ekg.clone(), &counts, sif, &config).unwrap()
}

fn assert_same_world(a: &IngestOutput, b: &IngestOutput) {
    assert_eq!(a.ekg.to_parts(), b.ekg.to_parts(), "graph diverged");
    assert_eq!(a.contexts, b.contexts, "contexts diverged");
    assert_eq!(a.tag_of, b.tag_of, "context tags diverged");
    assert_eq!(a.freqs, b.freqs, "frequency/IC tables diverged");
    assert_eq!(a.mappings, b.mappings, "mappings diverged");
    assert_eq!(a.instances_of, b.instances_of, "instance index diverged");
    assert_eq!(a.flagged, b.flagged, "flagged set diverged");
    assert_eq!(a.reach.to_parts(), b.reach.to_parts(), "reachability diverged");
    assert_eq!(a.mapper.to_parts(), b.mapper.to_parts(), "mapper diverged");
    assert_eq!(a.shortcuts_added, b.shortcuts_added, "shortcut count diverged");
}

#[test]
fn round_trip_is_bit_identical_with_embedding_mapper() {
    let out = tiny_world(11, MappingMethod::embedding_default());
    let reopened = WorldStore::open_bytes(&WorldStore::save_bytes(&out)).unwrap();
    assert_same_world(&out, &reopened);
    // The reopened mapper answers online queries identically.
    let name = out.ekg.name(*out.flagged.iter().min().unwrap());
    assert_eq!(out.mapper.map(&out.ekg, name), reopened.mapper.map(&reopened.ekg, name));
}

#[test]
fn round_trip_is_bit_identical_with_edit_mapper() {
    let out = tiny_world(12, MappingMethod::edit_tau2());
    let reopened = WorldStore::open_bytes(&WorldStore::save_bytes(&out)).unwrap();
    assert_same_world(&out, &reopened);
}

#[test]
fn file_round_trip_through_disk() {
    let out = tiny_world(13, MappingMethod::Exact);
    let path = std::env::temp_dir().join(format!("medkb-store-test-{}.bin", std::process::id()));
    let written = WorldStore::save(&out, &path).unwrap();
    assert!(written > 0);
    let reopened = WorldStore::open(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_same_world(&out, &reopened);
}

#[test]
fn truncated_file_is_rejected_at_every_length() {
    let out = tiny_world(14, MappingMethod::Exact);
    let bytes = WorldStore::save_bytes(&out);
    // Sample truncation points across the whole file, including the
    // header, the section table, and mid-section cuts.
    let step = (bytes.len() / 97).max(1);
    for cut in (0..bytes.len()).step_by(step) {
        match WorldStore::open_bytes(&bytes[..cut]) {
            Err(MedKbError::Validation(report)) => assert!(!report.is_empty()),
            Err(other) => panic!("cut {cut}: unexpected error kind {other:?}"),
            Ok(_) => panic!("cut {cut}: truncated file opened successfully"),
        }
    }
}

#[test]
fn flipped_byte_is_rejected_everywhere() {
    let out = tiny_world(15, MappingMethod::Exact);
    let bytes = WorldStore::save_bytes(&out);
    let step = (bytes.len() / 211).max(1);
    for at in (0..bytes.len()).step_by(step) {
        let mut corrupted = bytes.clone();
        corrupted[at] ^= 0x20;
        match WorldStore::open_bytes(&corrupted) {
            Err(MedKbError::Validation(report)) => assert!(!report.is_empty()),
            Err(other) => panic!("byte {at}: unexpected error kind {other:?}"),
            Ok(_) => panic!("byte {at}: corrupted file opened successfully"),
        }
    }
}

#[test]
fn wrong_version_is_rejected_with_a_version_defect() {
    let out = tiny_world(16, MappingMethod::Exact);
    let mut bytes = WorldStore::save_bytes(&out);
    bytes[8] = 0xFF; // format version field
    match WorldStore::open_bytes(&bytes) {
        Err(MedKbError::Validation(report)) => {
            assert!(
                report.defects().iter().any(|d| d.message.contains("version")),
                "report does not mention the version: {report}"
            );
        }
        other => panic!("expected a validation error, got {other:?}"),
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let out = tiny_world(17, MappingMethod::Exact);
    let mut bytes = WorldStore::save_bytes(&out);
    bytes[0] = b'X';
    assert!(matches!(WorldStore::open_bytes(&bytes), Err(MedKbError::Validation(_))));
}
