//! The world store: save / open of a whole [`IngestOutput`].
//!
//! # File layout (format version 1, all integers little-endian)
//!
//! ```text
//! offset 0   magic           8 bytes  b"MEDKBST1"
//!        8   format version  u32      (= 1)
//!       12   section count   u32      (= 8)
//!       16   table checksum  u64      xxh64(section table, seed = version)
//!       24   section table   count × 32 bytes:
//!              id u32 · reserved u32 · offset u64 · len u64 · checksum u64
//!       …   section payloads, each at an 8-byte-aligned offset
//! ```
//!
//! Every section payload is checksummed independently (`xxh64(payload,
//! seed = section id)`), so a bit flip anywhere in the file is caught
//! before any of its bytes are interpreted. Section contents are
//! length-prefixed primitive arrays (see [`crate::bytes`]): the dense
//! numeric tables — frequencies, IC, reachability labels, embedding
//! matrices — decode as single bulk copies, which is what makes a cold
//! open orders of magnitude cheaper than re-running Algorithm 1.
//!
//! Corrupted, truncated, or version-mismatched files come back as
//! [`MedKbError::Validation`] with a defect naming the failing section —
//! never a panic.

use std::collections::HashSet;
use std::path::Path;

use medkb_core::{
    ConceptMapper, FreqParts, Frequencies, IngestOutput, InstanceIndex, MapperParts, MappingIndex,
    MappingMethod,
};
use medkb_ekg::{Edge, Ekg, EkgParts, ReachParts, ReachabilityIndex};
use medkb_embed::{SifParts, WordVectorParts};
use medkb_ontology::ContextSpec;
use medkb_snomed::oracle::N_TAGS;
use medkb_snomed::ContextTag;
use medkb_types::{
    ContextId, ExtConceptId, Id, InstanceId, MedKbError, OntoConceptId, RelationshipId, Result,
    ValidationReport,
};

use crate::bytes::{SectionReader, SectionWriter};
use crate::xxh::xxh64;

/// Magic bytes opening every store file.
pub const MAGIC: [u8; 8] = *b"MEDKBST1";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Section ids in file order. The order is part of the format.
const SECTION_IDS: [u32; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
const SECTION_NAMES: [&str; 8] =
    ["ekg", "contexts", "freqs", "mappings", "instances", "reach", "mapper", "meta"];
const HEADER_FIXED: usize = 24;
const TABLE_ENTRY: usize = 32;

/// Versioned, checksummed flat-binary persistence of an ingested world.
///
/// [`WorldStore::save`] lays the entire [`IngestOutput`] — customized
/// graph, contexts, frequency/IC tables, mappings, reachability labels,
/// embedding model and concept index — into one flat file;
/// [`WorldStore::open`] validates the header and every section checksum,
/// then reconstructs the output without re-running Algorithm 1.
pub struct WorldStore;

impl WorldStore {
    /// Serialize `out` into an in-memory store image.
    pub fn save_bytes(out: &IngestOutput) -> Vec<u8> {
        let sections: [Vec<u8>; 8] = [
            enc_ekg(&out.ekg.to_parts()),
            enc_contexts(&out.contexts, &out.tag_of),
            enc_freqs(&out.freqs.to_parts()),
            enc_mappings(&out.mappings),
            enc_instances(&out.instances_of),
            enc_reach(&out.reach.to_parts()),
            enc_mapper(&out.mapper.to_parts()),
            enc_meta(out),
        ];

        let mut table = Vec::with_capacity(SECTION_IDS.len() * TABLE_ENTRY);
        let mut offset = (HEADER_FIXED + SECTION_IDS.len() * TABLE_ENTRY) as u64;
        for (i, payload) in sections.iter().enumerate() {
            debug_assert_eq!(payload.len() % 8, 0, "section payloads are 8-byte aligned");
            table.extend_from_slice(&SECTION_IDS[i].to_le_bytes());
            table.extend_from_slice(&0u32.to_le_bytes());
            table.extend_from_slice(&offset.to_le_bytes());
            table.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            table.extend_from_slice(&xxh64(payload, u64::from(SECTION_IDS[i])).to_le_bytes());
            offset += payload.len() as u64;
        }

        let mut buf = Vec::with_capacity(offset as usize);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&(SECTION_IDS.len() as u32).to_le_bytes());
        buf.extend_from_slice(&xxh64(&table, u64::from(FORMAT_VERSION)).to_le_bytes());
        buf.extend_from_slice(&table);
        for payload in &sections {
            buf.extend_from_slice(payload);
        }
        buf
    }

    /// Save `out` to `path`, returning the file size in bytes.
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] when the file cannot be written.
    pub fn save(out: &IngestOutput, path: &Path) -> Result<u64> {
        let bytes = Self::save_bytes(out);
        std::fs::write(path, &bytes).map_err(|e| {
            MedKbError::invalid(format!("store save {}: {e}", path.display()))
        })?;
        Ok(bytes.len() as u64)
    }

    /// Reconstruct an [`IngestOutput`] from a store image.
    ///
    /// # Errors
    /// [`MedKbError::Validation`] naming every structural defect found —
    /// wrong magic, unsupported version, out-of-range section, checksum
    /// mismatch, or malformed section content.
    pub fn open_bytes(buf: &[u8]) -> Result<IngestOutput> {
        let sections = validate_and_slice(buf)?;
        let ekg = Ekg::from_parts(dec_ekg(sections[0])?);
        let (contexts, tag_of) = dec_contexts(sections[1])?;
        let freqs = Frequencies::from_parts(dec_freqs(sections[2])?);
        let pairs = dec_mappings(sections[3])?;
        let instances_of = dec_instances(sections[4])?;
        let reach = ReachabilityIndex::from_parts(dec_reach(sections[5], ekg.len())?);
        let mapper = ConceptMapper::from_parts(&ekg, dec_mapper(sections[6])?)?;
        let shortcuts_added = dec_meta(sections[7], ekg.len(), contexts.len())?;
        let flagged: HashSet<ExtConceptId> = pairs.iter().map(|&(_, c)| c).collect();
        let mappings = MappingIndex::from_pairs(pairs);
        Ok(IngestOutput {
            ekg,
            contexts,
            tag_of,
            freqs,
            mappings,
            instances_of,
            flagged,
            mapper,
            reach,
            shortcuts_added,
        })
    }

    /// Open the store at `path`.
    ///
    /// # Errors
    /// [`MedKbError::InvalidArgument`] when the file cannot be read;
    /// otherwise as [`WorldStore::open_bytes`].
    pub fn open(path: &Path) -> Result<IngestOutput> {
        let bytes = std::fs::read(path).map_err(|e| {
            MedKbError::invalid(format!("store open {}: {e}", path.display()))
        })?;
        Self::open_bytes(&bytes)
    }
}

/// Validate header + every section checksum; return the payload slices in
/// section order. Collects **all** header/table defects before failing.
fn validate_and_slice(buf: &[u8]) -> Result<Vec<&[u8]>> {
    let mut report = ValidationReport::new();
    if buf.len() < HEADER_FIXED {
        report.defect("store header", None, format!("file too small: {} bytes", buf.len()));
        return Err(MedKbError::Validation(report));
    }
    if buf[..8] != MAGIC {
        report.defect("store header", None, format!("bad magic {:02x?}", &buf[..8]));
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().expect("4-byte chunk"));
    if version != FORMAT_VERSION {
        report.defect(
            "store header",
            None,
            format!("unsupported format version {version} (expected {FORMAT_VERSION})"),
        );
    }
    let count = u32::from_le_bytes(buf[12..16].try_into().expect("4-byte chunk")) as usize;
    if count != SECTION_IDS.len() {
        report.defect(
            "store header",
            None,
            format!("expected {} sections, header declares {count}", SECTION_IDS.len()),
        );
    }
    if !report.is_empty() {
        return Err(MedKbError::Validation(report));
    }

    let table_end = HEADER_FIXED + count * TABLE_ENTRY;
    if buf.len() < table_end {
        report.defect("store header", None, "file truncated inside the section table");
        return Err(MedKbError::Validation(report));
    }
    let declared = u64::from_le_bytes(buf[16..24].try_into().expect("8-byte chunk"));
    let table = &buf[HEADER_FIXED..table_end];
    if xxh64(table, u64::from(version)) != declared {
        report.defect("store header", None, "section table checksum mismatch");
        return Err(MedKbError::Validation(report));
    }

    let mut sections = Vec::with_capacity(count);
    for (i, entry) in table.chunks_exact(TABLE_ENTRY).enumerate() {
        let name = SECTION_NAMES[i];
        let id = u32::from_le_bytes(entry[0..4].try_into().expect("chunk"));
        let offset = u64::from_le_bytes(entry[8..16].try_into().expect("chunk")) as usize;
        let len = u64::from_le_bytes(entry[16..24].try_into().expect("chunk")) as usize;
        let checksum = u64::from_le_bytes(entry[24..32].try_into().expect("chunk"));
        if id != SECTION_IDS[i] {
            report.defect(name, None, format!("section id {id} out of order"));
            continue;
        }
        if !offset.is_multiple_of(8) {
            report.defect(name, None, format!("section offset {offset} not 8-byte aligned"));
            continue;
        }
        let Some(payload) = offset.checked_add(len).and_then(|end| buf.get(offset..end)) else {
            report.defect(name, None, format!("section {offset}+{len} exceeds file size"));
            continue;
        };
        if xxh64(payload, u64::from(id)) != checksum {
            report.defect(name, None, "section checksum mismatch");
            continue;
        }
        sections.push(payload);
    }
    if !report.is_empty() {
        return Err(MedKbError::Validation(report));
    }
    Ok(sections)
}

// ---------------------------------------------------------------- sections

fn enc_ekg(parts: &EkgParts) -> Vec<u8> {
    let mut w = SectionWriter::new();
    let n = parts.names.len();
    w.put_u64(n as u64);
    w.put_strings(parts.names.iter().map(|s| s.as_ref()));

    let mut syn_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    syn_offsets.push(0);
    let mut total = 0u32;
    for syns in &parts.synonyms {
        total += syns.len() as u32;
        syn_offsets.push(total);
    }
    w.put_u32_slice(&syn_offsets);
    w.put_strings(parts.synonyms.iter().flatten().map(|s| s.as_ref()));

    w.put_strings(parts.lookup.iter().map(|(k, _)| k.as_ref()));
    let mut lk_offsets: Vec<u32> = Vec::with_capacity(parts.lookup.len() + 1);
    lk_offsets.push(0);
    let mut lk_values: Vec<u32> = Vec::new();
    for (_, vals) in &parts.lookup {
        lk_values.extend(vals.iter().map(|c| c.raw()));
        lk_offsets.push(lk_values.len() as u32);
    }
    w.put_u32_slice(&lk_offsets);
    w.put_u32_slice(&lk_values);

    for rows in [&parts.up, &parts.down] {
        let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut tos: Vec<u32> = Vec::new();
        let mut weights: Vec<u32> = Vec::new();
        let mut flags: Vec<u64> = Vec::new();
        for row in rows.iter() {
            for e in row {
                let at = tos.len();
                tos.push(e.to.raw());
                weights.push(e.weight);
                if at / 64 >= flags.len() {
                    flags.push(0);
                }
                if e.shortcut {
                    flags[at / 64] |= 1u64 << (at % 64);
                }
            }
            offsets.push(tos.len() as u32);
        }
        w.put_u32_slice(&offsets);
        w.put_u32_slice(&tos);
        w.put_u32_slice(&weights);
        w.put_u64_slice(&flags);
    }

    w.put_u32(parts.root.raw());
    w.pad8();
    w.put_u32_slice(&parts.topo.iter().map(|c| c.raw()).collect::<Vec<u32>>());
    w.put_u32_slice(&parts.depth);
    w.finish()
}

fn dec_ekg(buf: &[u8]) -> Result<EkgParts> {
    let mut r = SectionReader::new(buf, "ekg");
    let n = r.u64()? as usize;
    let names: Vec<Box<str>> =
        r.strings()?.into_iter().map(String::into_boxed_str).collect();
    if names.len() != n {
        return r.fail(format!("{} names for {n} concepts", names.len()));
    }

    let syn_offsets = r.u32_slice()?;
    let syn_flat = r.strings()?;
    if syn_offsets.len() != n + 1 || syn_offsets.last().copied().unwrap_or(1) as usize != syn_flat.len()
    {
        return r.fail("synonym offsets do not span the synonym list");
    }
    let mut synonyms: Vec<Vec<Box<str>>> = Vec::with_capacity(n);
    for wdw in syn_offsets.windows(2) {
        if wdw[0] > wdw[1] {
            return r.fail("synonym offsets out of order");
        }
        synonyms.push(
            syn_flat[wdw[0] as usize..wdw[1] as usize]
                .iter()
                .map(|s| s.clone().into_boxed_str())
                .collect(),
        );
    }

    let lk_keys = r.strings()?;
    let lk_offsets = r.u32_slice()?;
    let lk_values = r.u32_slice()?;
    if lk_offsets.len() != lk_keys.len() + 1
        || lk_offsets.last().copied().unwrap_or(1) as usize != lk_values.len()
    {
        return r.fail("lookup offsets do not span the value list");
    }
    let mut lookup: Vec<(Box<str>, Vec<ExtConceptId>)> = Vec::with_capacity(lk_keys.len());
    for (key, wdw) in lk_keys.into_iter().zip(lk_offsets.windows(2)) {
        if wdw[0] > wdw[1] {
            return r.fail("lookup offsets out of order");
        }
        lookup.push((
            key.into_boxed_str(),
            lk_values[wdw[0] as usize..wdw[1] as usize]
                .iter()
                .map(|&c| ExtConceptId::new(c))
                .collect(),
        ));
    }

    let mut edge_lists: Vec<Vec<Vec<Edge>>> = Vec::with_capacity(2);
    for _ in 0..2 {
        let offsets = r.u32_slice()?;
        let tos = r.u32_slice()?;
        let weights = r.u32_slice()?;
        let flags = r.u64_slice()?;
        if offsets.len() != n + 1
            || offsets.last().copied().unwrap_or(1) as usize != tos.len()
            || weights.len() != tos.len()
            || flags.len() < tos.len().div_ceil(64)
        {
            return r.fail("edge arrays are inconsistent");
        }
        let mut rows: Vec<Vec<Edge>> = Vec::with_capacity(n);
        for wdw in offsets.windows(2) {
            if wdw[0] > wdw[1] {
                return r.fail("edge offsets out of order");
            }
            rows.push(
                (wdw[0] as usize..wdw[1] as usize)
                    .map(|at| Edge {
                        to: ExtConceptId::new(tos[at]),
                        weight: weights[at],
                        shortcut: flags[at / 64] >> (at % 64) & 1 == 1,
                    })
                    .collect(),
            );
        }
        edge_lists.push(rows);
    }
    let down = edge_lists.pop().expect("two edge lists");
    let up = edge_lists.pop().expect("two edge lists");

    let root = r.u32()?;
    r.align8();
    let topo: Vec<ExtConceptId> = r.u32_slice()?.into_iter().map(ExtConceptId::new).collect();
    let depth = r.u32_slice()?;
    if (root as usize) >= n.max(1) || topo.len() != n || depth.len() != n {
        return r.fail("root/topo/depth inconsistent with concept count");
    }
    Ok(EkgParts {
        names,
        synonyms,
        lookup,
        up,
        down,
        root: ExtConceptId::new(root),
        topo,
        depth,
    })
}

fn enc_contexts(contexts: &[ContextSpec], tag_of: &[ContextTag]) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.put_u64(contexts.len() as u64);
    w.put_u32_slice(&contexts.iter().map(|c| c.relationship.raw()).collect::<Vec<u32>>());
    w.put_u32_slice(&contexts.iter().map(|c| c.domain.raw()).collect::<Vec<u32>>());
    w.put_u32_slice(&contexts.iter().map(|c| c.range.raw()).collect::<Vec<u32>>());
    w.put_strings(contexts.iter().map(|c| c.label.as_str()));
    w.put_bytes(&tag_of.iter().map(|t| t.index() as u8).collect::<Vec<u8>>());
    w.finish()
}

fn dec_contexts(buf: &[u8]) -> Result<(Vec<ContextSpec>, Vec<ContextTag>)> {
    let mut r = SectionReader::new(buf, "contexts");
    let m = r.u64()? as usize;
    let relationships = r.u32_slice()?;
    let domains = r.u32_slice()?;
    let ranges = r.u32_slice()?;
    let labels = r.strings()?;
    let tag_bytes = r.bytes()?.to_vec();
    if relationships.len() != m || domains.len() != m || ranges.len() != m || labels.len() != m {
        return r.fail("context arrays disagree on length");
    }
    if tag_bytes.len() != m {
        return r.fail(format!("{} tags for {m} contexts", tag_bytes.len()));
    }
    let mut tag_of = Vec::with_capacity(m);
    for &b in &tag_bytes {
        match ContextTag::ALL.get(b as usize) {
            Some(&tag) => tag_of.push(tag),
            None => return r.fail(format!("tag byte {b} out of range")),
        }
    }
    let contexts = labels
        .into_iter()
        .enumerate()
        .map(|(i, label)| ContextSpec {
            id: ContextId::from_usize(i),
            relationship: RelationshipId::new(relationships[i]),
            domain: OntoConceptId::new(domains[i]),
            range: OntoConceptId::new(ranges[i]),
            label,
        })
        .collect();
    Ok((contexts, tag_of))
}

fn enc_freqs(parts: &FreqParts) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.put_u64(N_TAGS as u64);
    for table in &parts.per_tag {
        w.put_f64_slice(table);
    }
    w.put_f64_slice(&parts.per_tag_total);
    w.put_f64_slice(&parts.aggregate);
    w.put_f64_slice(&parts.intrinsic);
    for table in &parts.ic_per_tag {
        w.put_f64_slice(table);
    }
    w.put_f64_slice(&parts.ic_aggregate);
    w.put_f64_slice(&parts.min_ic_per_tag);
    w.put_f64(parts.min_ic_aggregate);
    w.put_f64(parts.min_intrinsic);
    w.finish()
}

fn dec_freqs(buf: &[u8]) -> Result<FreqParts> {
    let mut r = SectionReader::new(buf, "freqs");
    let tags = r.u64()? as usize;
    if tags != N_TAGS {
        return r.fail(format!("file has {tags} context tags, this build has {N_TAGS}"));
    }
    let mut per_tag = Vec::with_capacity(N_TAGS);
    for _ in 0..N_TAGS {
        per_tag.push(r.f64_slice()?);
    }
    let per_tag_total = r.f64_slice()?;
    let aggregate = r.f64_slice()?;
    let intrinsic = r.f64_slice()?;
    let mut ic_per_tag = Vec::with_capacity(N_TAGS);
    for _ in 0..N_TAGS {
        ic_per_tag.push(r.f64_slice()?);
    }
    let ic_aggregate = r.f64_slice()?;
    let min_ic_per_tag = r.f64_slice()?;
    let min_ic_aggregate = r.f64()?;
    let min_intrinsic = r.f64()?;
    if per_tag_total.len() != N_TAGS || min_ic_per_tag.len() != N_TAGS {
        return r.fail("per-tag scalar arrays disagree with the tag count");
    }
    let n = aggregate.len();
    if per_tag.iter().chain(&ic_per_tag).any(|t| t.len() != n)
        || intrinsic.len() != n
        || ic_aggregate.len() != n
    {
        return r.fail("frequency tables disagree on concept count");
    }
    Ok(FreqParts {
        per_tag,
        per_tag_total,
        aggregate,
        intrinsic,
        ic_per_tag,
        ic_aggregate,
        min_ic_per_tag,
        min_ic_aggregate,
        min_intrinsic,
    })
}

fn enc_mappings(mappings: &MappingIndex) -> Vec<u8> {
    let mut w = SectionWriter::new();
    let pairs = mappings.as_slice();
    w.put_u32_slice(&pairs.iter().map(|(i, _)| i.raw()).collect::<Vec<u32>>());
    w.put_u32_slice(&pairs.iter().map(|(_, c)| c.raw()).collect::<Vec<u32>>());
    w.finish()
}

fn dec_mappings(buf: &[u8]) -> Result<Vec<(InstanceId, ExtConceptId)>> {
    let mut r = SectionReader::new(buf, "mappings");
    let insts = r.u32_slice()?;
    let concepts = r.u32_slice()?;
    if insts.len() != concepts.len() {
        return r.fail("instance and concept columns disagree on length");
    }
    Ok(insts
        .into_iter()
        .zip(concepts)
        .map(|(i, c)| (InstanceId::new(i), ExtConceptId::new(c)))
        .collect())
}

fn enc_instances(index: &InstanceIndex) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.put_u32_slice(&index.concepts().iter().map(|c| c.raw()).collect::<Vec<u32>>());
    w.put_u32_slice(index.offsets());
    w.put_u32_slice(&index.instances().iter().map(|i| i.raw()).collect::<Vec<u32>>());
    w.finish()
}

fn dec_instances(buf: &[u8]) -> Result<InstanceIndex> {
    let mut r = SectionReader::new(buf, "instances");
    let concepts: Vec<ExtConceptId> = r.u32_slice()?.into_iter().map(ExtConceptId::new).collect();
    let offsets = r.u32_slice()?;
    let instances: Vec<InstanceId> = r.u32_slice()?.into_iter().map(InstanceId::new).collect();
    if offsets.len() != concepts.len() + 1
        || offsets.last().copied().unwrap_or(1) as usize != instances.len()
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return r.fail("instance CSR offsets are inconsistent");
    }
    Ok(InstanceIndex::from_parts(concepts, offsets, instances))
}

fn enc_reach(parts: &ReachParts) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.put_u32_slice(&parts.tin);
    w.put_u32_slice(&parts.tout);
    w.put_u32_slice(&parts.tree_depth);
    w.put_u32_slice(&parts.exc);
    w.put_u32_slice(&parts.set_offsets);
    w.put_u32_slice(&parts.set_members);
    w.finish()
}

fn dec_reach(buf: &[u8], n: usize) -> Result<ReachParts> {
    let mut r = SectionReader::new(buf, "reach");
    let tin = r.u32_slice()?;
    let tout = r.u32_slice()?;
    let tree_depth = r.u32_slice()?;
    let exc = r.u32_slice()?;
    let set_offsets = r.u32_slice()?;
    let set_members = r.u32_slice()?;
    if tin.len() != n || tout.len() != n || tree_depth.len() != n || exc.len() != n {
        return r.fail(format!("reachability labels disagree with {n} concepts"));
    }
    let pool = set_offsets.len().saturating_sub(1) as u32;
    if set_offsets.first().copied().unwrap_or(1) != 0
        || set_offsets.last().copied().unwrap_or(1) as usize != set_members.len()
        || set_offsets.windows(2).any(|w| w[0] > w[1])
        || exc.iter().any(|&p| p >= pool.max(1))
    {
        return r.fail("exception pool offsets are inconsistent");
    }
    Ok(ReachParts { tin, tout, tree_depth, exc, set_offsets, set_members })
}

fn enc_mapper(parts: &MapperParts) -> Vec<u8> {
    let mut w = SectionWriter::new();
    let (tag, tau, threshold) = match parts.method {
        MappingMethod::Exact => (0u32, 0u32, 0.0),
        MappingMethod::Edit(tau) => (1, tau, 0.0),
        MappingMethod::Embedding { threshold } => (2, 0, threshold),
        MappingMethod::Phonetic => (3, 0, 0.0),
    };
    w.put_u32(tag);
    w.put_u32(tau);
    w.put_f64(threshold);
    w.put_u64(u64::from(parts.sif.is_some()));
    if let Some(sif) = &parts.sif {
        w.put_strings(sif.vectors.words.iter());
        w.put_f32_slice(&sif.vectors.vecs);
        w.put_u64_slice(&sif.vectors.counts);
        w.put_u64(sif.vectors.total_tokens);
        w.put_u64(sif.vectors.dim);
        w.put_f64(sif.a);
        w.put_f32_slice(&sif.pc);
    }
    w.put_u32_slice(&parts.index_payloads);
    w.put_f32_slice(&parts.index_data);
    w.finish()
}

fn dec_mapper(buf: &[u8]) -> Result<MapperParts> {
    let mut r = SectionReader::new(buf, "mapper");
    let tag = r.u32()?;
    let tau = r.u32()?;
    let threshold = r.f64()?;
    let method = match tag {
        0 => MappingMethod::Exact,
        1 => MappingMethod::Edit(tau),
        2 => MappingMethod::Embedding { threshold },
        3 => MappingMethod::Phonetic,
        other => return r.fail(format!("unknown mapping method tag {other}")),
    };
    let has_sif = r.u64()?;
    let sif = if has_sif == 1 {
        let words = r.strings()?;
        let vecs = r.f32_slice()?;
        let counts = r.u64_slice()?;
        let total_tokens = r.u64()?;
        let dim = r.u64()?;
        let a = r.f64()?;
        let pc = r.f32_slice()?;
        if counts.len() != words.len() || vecs.len() as u64 != dim * words.len() as u64 {
            return r.fail("word-vector arrays disagree with the vocabulary size");
        }
        Some(SifParts {
            vectors: WordVectorParts { words, vecs, counts, total_tokens, dim },
            a,
            pc,
        })
    } else if has_sif == 0 {
        None
    } else {
        return r.fail(format!("bad SIF presence flag {has_sif}"));
    };
    let index_payloads = r.u32_slice()?;
    let index_data = r.f32_slice()?;
    if let Some(sif) = &sif {
        if index_data.len() as u64 != sif.vectors.dim * index_payloads.len() as u64 {
            return r.fail("embedding index arrays disagree with the model dimensionality");
        }
    }
    Ok(MapperParts { method, sif, index_payloads, index_data })
}

fn enc_meta(out: &IngestOutput) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.put_u64(out.shortcuts_added as u64);
    w.put_u64(out.ekg.len() as u64);
    w.put_u64(out.contexts.len() as u64);
    w.finish()
}

fn dec_meta(buf: &[u8], n: usize, m: usize) -> Result<usize> {
    let mut r = SectionReader::new(buf, "meta");
    let shortcuts = r.u64()? as usize;
    let concepts = r.u64()? as usize;
    let contexts = r.u64()? as usize;
    if concepts != n || contexts != m {
        return r.fail(format!(
            "meta counts ({concepts} concepts, {contexts} contexts) disagree with sections ({n}, {m})"
        ));
    }
    Ok(shortcuts)
}
