//! Persistent world store: save and reopen a whole ingested world
//! (DESIGN.md §14).
//!
//! Ingesting a SNOMED-scale world (Algorithm 1: context generation,
//! instance mapping, reachability labelling, frequency/IC rollups,
//! shortcut discovery) is minutes of work; serving wants the result in
//! milliseconds after a restart. This crate lays the entire
//! [`medkb_core::IngestOutput`] into one flat, versioned, checksummed
//! little-endian file — graph, contexts, dense frequency/IC tables,
//! instance mappings, hybrid reachability labels, the fitted SIF model and
//! its concept embedding index — so [`WorldStore::open`] validates
//! checksums and bulk-copies sections back into place instead of
//! re-running Algorithm 1.
//!
//! Reopened worlds are **bit-identical** to the ingest that produced them
//! (pinned by the `medkb-fuzz` store round-trip oracle over adversarial
//! worlds): every f64 table is persisted by bit pattern, the reachability
//! exception pool is serialized canonically, and the only recomputed
//! structures (the mapper's exact/edit/phonetic tables and n-gram repair
//! index) are deterministic functions of persisted data.
//!
//! Corrupted files — truncation, bit flips, version or magic mismatch —
//! are rejected with a [`medkb_types::MedKbError::Validation`] report
//! naming the failing section; no input can make `open` panic.

#![warn(missing_docs)]

pub mod bytes;
pub mod store;
pub mod xxh;

pub use store::{WorldStore, FORMAT_VERSION, MAGIC};
pub use xxh::xxh64;
