//! Little-endian section codec.
//!
//! Every section payload is a sequence of length-prefixed primitive
//! arrays: a `u64` element count, the raw little-endian element bytes,
//! then zero padding up to the next 8-byte boundary. String lists add a
//! `count + 1` offset table over one concatenated UTF-8 blob, so decoding
//! a list of a million names is one offset-table adoption plus one blob
//! slice per entry — no per-character parsing.
//!
//! The reader bounds-checks *every* access and reports failures as
//! [`ValidationReport`] defects naming the section, never panicking on
//! hostile input: a truncated or bit-flipped file must come back as a
//! clean [`MedKbError::Validation`].

use medkb_types::{MedKbError, Result, ValidationReport};

/// Append-only little-endian section buffer.
#[derive(Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// An empty section.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zero-pad to the next 8-byte boundary.
    pub fn pad8(&mut self) {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }

    /// Append one `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append one `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append one `f64` (exact bit pattern).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a length-prefixed `u32` array.
    pub fn put_u32_slice(&mut self, s: &[u32]) {
        self.put_u64(s.len() as u64);
        for &v in s {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self.pad8();
    }

    /// Append a length-prefixed `u64` array.
    pub fn put_u64_slice(&mut self, s: &[u64]) {
        self.put_u64(s.len() as u64);
        for &v in s {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a length-prefixed `f64` array (exact bit patterns).
    pub fn put_f64_slice(&mut self, s: &[f64]) {
        self.put_u64(s.len() as u64);
        for &v in s {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Append a length-prefixed `f32` array (exact bit patterns).
    pub fn put_f32_slice(&mut self, s: &[f32]) {
        self.put_u64(s.len() as u64);
        for &v in s {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.pad8();
    }

    /// Append a length-prefixed raw byte blob.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
        self.pad8();
    }

    /// Append a string list: count, `count + 1` cumulative byte offsets,
    /// then the concatenated UTF-8 blob.
    pub fn put_strings<I, S>(&mut self, strings: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let items: Vec<S> = strings.into_iter().collect();
        self.put_u64(items.len() as u64);
        let mut offsets: Vec<u32> = Vec::with_capacity(items.len() + 1);
        let mut total: u32 = 0;
        offsets.push(0);
        for s in &items {
            total += s.as_ref().len() as u32;
            offsets.push(total);
        }
        for &o in &offsets {
            self.buf.extend_from_slice(&o.to_le_bytes());
        }
        self.pad8();
        self.put_u64(u64::from(total));
        for s in &items {
            self.buf.extend_from_slice(s.as_ref().as_bytes());
        }
        self.pad8();
    }

    /// The finished payload (8-byte aligned).
    pub fn finish(mut self) -> Vec<u8> {
        self.pad8();
        self.buf
    }
}

/// Bounds-checked little-endian reader over one section payload.
pub struct SectionReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> SectionReader<'a> {
    /// A reader over `buf`, reporting defects against `section`.
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        Self { buf, pos: 0, section }
    }

    /// A validation failure naming this section.
    pub fn fail<T>(&self, message: impl Into<String>) -> Result<T> {
        let mut report = ValidationReport::new();
        report.defect(self.section, None, message);
        Err(MedKbError::Validation(report))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        match self.buf.get(self.pos..self.pos + n) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => self.fail(format!(
                "truncated: need {n} bytes at offset {}, section has {}",
                self.pos,
                self.buf.len()
            )),
        }
    }

    /// Skip padding up to the next 8-byte boundary.
    pub fn align8(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Read one `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte chunk")))
    }

    /// Read one `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte chunk")))
    }

    /// Read one `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read an element count written by the length-prefixed array forms,
    /// rejecting counts that cannot fit in the remaining bytes.
    fn count(&mut self, elem_bytes: usize) -> Result<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(elem_bytes as u64).is_none_or(|total| total > remaining) {
            return self.fail(format!(
                "implausible element count {n} (× {elem_bytes} bytes) with {remaining} bytes left"
            ));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed `u32` array.
    pub fn u32_slice(&mut self) -> Result<Vec<u32>> {
        let n = self.count(4)?;
        let bytes = self.take(n * 4)?;
        let out = bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("chunk"))).collect();
        self.align8();
        Ok(out)
    }

    /// Read a length-prefixed `u64` array.
    pub fn u64_slice(&mut self) -> Result<Vec<u64>> {
        let n = self.count(8)?;
        let bytes = self.take(n * 8)?;
        Ok(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("chunk"))).collect())
    }

    /// Read a length-prefixed `f64` array.
    pub fn f64_slice(&mut self) -> Result<Vec<f64>> {
        let n = self.count(8)?;
        let bytes = self.take(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunk"))))
            .collect())
    }

    /// Read a length-prefixed `f32` array.
    pub fn f32_slice(&mut self) -> Result<Vec<f32>> {
        let n = self.count(4)?;
        let bytes = self.take(n * 4)?;
        let out = bytes
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().expect("chunk"))))
            .collect();
        self.align8();
        Ok(out)
    }

    /// Read a length-prefixed raw byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.count(1)?;
        let out = self.take(n)?;
        self.align8();
        Ok(out)
    }

    /// Read a string list written by [`SectionWriter::put_strings`].
    pub fn strings(&mut self) -> Result<Vec<String>> {
        let n = self.count(4)?; // offsets dominate the size floor
        let offsets_bytes = self.take((n + 1) * 4)?;
        let offsets: Vec<u32> = offsets_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("chunk")))
            .collect();
        self.align8();
        let blob = {
            let len = self.count(1)?;
            let b = self.take(len)?;
            self.align8();
            b
        };
        if offsets.first() != Some(&0) || offsets.last().copied().unwrap_or(1) as usize != blob.len()
        {
            return self.fail("string offset table does not span the blob");
        }
        let mut out = Vec::with_capacity(n);
        for w in offsets.windows(2) {
            let (start, end) = (w[0] as usize, w[1] as usize);
            if start > end || end > blob.len() {
                return self.fail(format!("string offsets out of order: {start}..{end}"));
            }
            match std::str::from_utf8(&blob[start..end]) {
                Ok(s) => out.push(s.to_string()),
                Err(_) => return self.fail(format!("invalid UTF-8 in string at {start}..{end}")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SectionWriter::new();
        w.put_u64(7);
        w.put_f64(-0.0);
        w.put_u32_slice(&[1, 2, 3]);
        w.put_f64_slice(&[1.5, f64::NAN]);
        w.put_f32_slice(&[0.25]);
        w.put_strings(["alpha", "", "βήτα"]);
        let buf = w.finish();
        assert_eq!(buf.len() % 8, 0);

        let mut r = SectionReader::new(&buf, "test");
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.u32_slice().unwrap(), vec![1, 2, 3]);
        let f = r.f64_slice().unwrap();
        assert_eq!(f[0], 1.5);
        assert!(f[1].is_nan());
        assert_eq!(r.f32_slice().unwrap(), vec![0.25]);
        assert_eq!(r.strings().unwrap(), vec!["alpha", "", "βήτα"]);
    }

    #[test]
    fn truncation_is_a_defect_not_a_panic() {
        let mut w = SectionWriter::new();
        w.put_u32_slice(&[1, 2, 3, 4, 5]);
        let buf = w.finish();
        // Cuts inside the trailing alignment padding still read the full
        // array; every cut inside the prefix or data must be a defect.
        for cut in 0..8 + 5 * 4 {
            let mut r = SectionReader::new(&buf[..cut], "test");
            match r.u32_slice() {
                Ok(v) => panic!("cut {cut} read data: {v:?}"),
                Err(MedKbError::Validation(report)) => assert!(!report.is_empty()),
                Err(other) => panic!("unexpected error kind: {other:?}"),
            }
        }
    }

    #[test]
    fn implausible_count_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut r = SectionReader::new(&buf, "test");
        assert!(matches!(r.u32_slice(), Err(MedKbError::Validation(_))));
    }
}
