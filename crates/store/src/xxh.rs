//! XXH64-style checksums for store sections.
//!
//! The store cannot add a hashing dependency (the build environment is
//! offline), so the 64-bit xxHash mixing function is implemented here from
//! the public specification: four parallel 8-byte accumulator lanes over
//! 32-byte stripes, a lane merge, tail handling for the last `len % 32`
//! bytes, and a final avalanche. It is used purely as an integrity
//! checksum — collisions need only be overwhelmingly unlikely under random
//! corruption, which any avalanching 64-bit mix provides.

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(P2)).rotate_left(31).wrapping_mul(P1)
}

#[inline]
fn merge_round(h: u64, v: u64) -> u64 {
    (h ^ round(0, v)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8-byte read"))
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4-byte read"))
}

/// The XXH64 hash of `data` under `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len() as u64;
    let mut rest = data;
    let mut h: u64;
    if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(P5);
    }
    h = h.wrapping_add(len);
    while rest.len() >= 8 {
        h ^= round(0, read_u64(rest));
        h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= u64::from(read_u32(rest)).wrapping_mul(P1);
        h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }
    for &b in rest {
        h ^= u64::from(b).wrapping_mul(P5);
        h = h.rotate_left(11).wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_empty_input() {
        // The canonical XXH64 test vector for the empty input, seed 0.
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
    }

    #[test]
    fn every_byte_position_matters() {
        // Flip one byte at each position of a buffer spanning all code
        // paths (stripes + 8/4/1-byte tails) and require a different hash.
        let base: Vec<u8> = (0..77u8).collect();
        let h0 = xxh64(&base, 7);
        for i in 0..base.len() {
            let mut corrupted = base.clone();
            corrupted[i] ^= 0x40;
            assert_ne!(xxh64(&corrupted, 7), h0, "byte {i} did not affect the hash");
        }
    }

    #[test]
    fn seed_and_length_matter() {
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abc", 1));
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abcd", 0));
        assert_ne!(xxh64(&[0u8; 31], 0), xxh64(&[0u8; 32], 0));
    }
}
