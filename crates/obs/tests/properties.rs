//! Property tests for the metrics registry (ISSUE 3 satellite):
//! concurrent counter increments sum exactly, histogram bucket counts
//! equal total observations, and snapshot JSON is byte-stable.

use std::sync::Arc;

use medkb_obs::{validate_json, Registry, LATENCY_BOUNDS_US};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N threads × M increments of K each sum to exactly N·M·K.
    #[test]
    fn concurrent_counter_increments_sum_exactly(
        (threads, per_thread) in (2usize..8, 1u64..400),
        step in 1u64..5,
    ) {
        let registry = Registry::shared();
        let counter = registry.counter("prop.counter");
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.add(step);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("incrementing thread");
        }
        prop_assert_eq!(counter.get(), threads as u64 * per_thread * step);
        prop_assert_eq!(registry.snapshot().counter("prop.counter"), counter.get());
    }

    /// Every observation lands in exactly one bucket: Σ buckets == count,
    /// even under concurrent recording, and the sum matches.
    #[test]
    fn histogram_bucket_counts_equal_total_observations(
        values in proptest::collection::vec(0u64..50_000, 1..400),
        threads in 1usize..6,
    ) {
        let registry = Registry::shared();
        let hist = registry.histogram("prop.hist", &[10, 100, 1_000, 10_000]);
        let chunk = values.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for shard in values.chunks(chunk) {
                let h = Arc::clone(&hist);
                scope.spawn(move || {
                    for &v in shard {
                        h.record(v);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        let hs = &snap.histograms["prop.hist"];
        prop_assert_eq!(hs.buckets.iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(hs.count, values.len() as u64);
        prop_assert_eq!(hs.sum, values.iter().sum::<u64>());
        prop_assert_eq!(hs.buckets.len(), hs.bounds.len() + 1);
        // Bucketing is exact: recompute each bucket sequentially.
        for (i, &bound) in hs.bounds.iter().enumerate() {
            let lower = if i == 0 { 0 } else { hs.bounds[i - 1] + 1 };
            let expect = values.iter().filter(|&&v| v >= lower && v <= bound).count() as u64;
            prop_assert_eq!(hs.buckets[i], expect, "bucket <= {}", bound);
        }
    }

    /// Re-recording the same workload into a fresh registry produces
    /// byte-identical snapshot JSON, in both serializations, regardless of
    /// the (shuffled) registration order.
    #[test]
    fn snapshot_json_is_byte_stable(
        counts in proptest::collection::vec(0u64..1_000, 1..8),
        latencies in proptest::collection::vec(0u64..100_000, 0..50),
        rotate in 0usize..8,
    ) {
        let names: [&'static str; 8] = [
            "s.a", "s.b", "s.c", "s.d", "s.e", "s.f", "s.g", "s.h",
        ];
        let build = |rotation: usize| {
            let registry = Registry::new();
            // Register in a rotated order: serialization must not care.
            for i in 0..counts.len() {
                let slot = (i + rotation) % counts.len();
                registry.counter(names[slot]).add(counts[slot]);
            }
            let h = registry.histogram("s.lat", LATENCY_BOUNDS_US);
            for &v in &latencies {
                h.record(v);
            }
            registry.gauge("s.threads").set(4);
            registry.snapshot()
        };
        let (a, b) = (build(0), build(rotate));
        prop_assert_eq!(a.to_json(), b.to_json());
        prop_assert_eq!(a.to_json_stable(), b.to_json_stable());
        prop_assert!(validate_json(&a.to_json()));
        prop_assert!(validate_json(&a.to_json_stable()));
    }
}
