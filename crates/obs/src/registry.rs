//! The metric primitives and the registry that interns them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// Default bucket upper bounds for latency histograms, in microseconds:
/// a 1–2–5 decade ladder from 1 µs to 10 s. Values above the last bound
/// land in the overflow bucket.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
];

/// A monotonic counter. All operations are relaxed atomic adds — safe to
/// share across worker threads; increments from N threads sum exactly.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: one atomic slot per bound (observations `<=`
/// the bound), one overflow slot, plus total count and sum. Bounds are
/// fixed at registration, so recording is a binary search plus three
/// relaxed adds — no allocation, no lock.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    /// `bounds.len() + 1` slots; the last is the overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be sorted");
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self { bounds: bounds.into(), buckets, count: AtomicU64::new(0), sum: AtomicU64::new(0) }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The configured bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Start a scoped timer that records elapsed microseconds into this
    /// histogram when dropped.
    pub fn time(&self) -> SpanTimer<'_> {
        SpanTimer { histogram: self, start: Instant::now() }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// RAII span: records the elapsed wall time (µs) into its histogram on
/// drop. Obtain via [`Histogram::time`]; wrap in an `Option` to make a
/// span free when instrumentation is disabled.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.histogram.record(self.start.elapsed().as_micros() as u64);
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
}

/// The metrics registry: interns metric handles by static name and
/// snapshots them all at once.
///
/// Registration (`counter` / `gauge` / `histogram`) takes a mutex and
/// should happen once per component at construction; the returned `Arc`
/// handles are lock-free to record through. Re-registering a name returns
/// the existing handle (histogram bounds are fixed by the first
/// registration).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry behind an `Arc`, ready to share.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Resolve (registering on first use) the counter `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        inner.counters.entry(name).or_default().clone()
    }

    /// Resolve (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        inner.gauges.entry(name).or_default().clone()
    }

    /// Resolve (registering on first use) the histogram `name` with the
    /// given bucket bounds. Bounds are fixed at first registration.
    pub fn histogram(&self, name: &'static str, bounds: &[u64]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        inner.histograms.entry(name).or_insert_with(|| Arc::new(Histogram::new(bounds))).clone()
    }

    /// Resolve a latency histogram (µs) with the default
    /// [`LATENCY_BOUNDS_US`] decade ladder.
    pub fn latency(&self, name: &'static str) -> Arc<Histogram> {
        self.histogram(name, LATENCY_BOUNDS_US)
    }

    /// Freeze every registered metric into a point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("obs registry poisoned");
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(&k, v)| (k.to_string(), v.get())).collect(),
            gauges: inner.gauges.iter().map(|(&k, v)| (k.to_string(), v.get())).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same underlying counter.
        assert_eq!(r.counter("a.b").get(), 5);
        let g = r.gauge("a.g");
        g.set(7);
        g.set(3);
        assert_eq!(r.gauge("a.g").get(), 3);
    }

    #[test]
    fn histogram_buckets_observations() {
        let r = Registry::new();
        let h = r.histogram("h", &[10, 100]);
        for v in [0, 10, 11, 100, 101, 5_000] {
            h.record(v);
        }
        let snap = r.snapshot();
        let hs = &snap.histograms["h"];
        assert_eq!(hs.buckets, vec![2, 2, 2]); // <=10, <=100, overflow
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, 5_222);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let r = Registry::new();
        let h = r.latency("t");
        {
            let _span = h.time();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn latency_bounds_are_sorted() {
        assert!(LATENCY_BOUNDS_US.windows(2).all(|w| w[0] < w[1]));
    }
}
