//! A minimal JSON validator, so smoke tests can assert that emitted
//! snapshots parse without pulling in a serialization dependency.

/// Validate that `input` is one well-formed JSON value (object, array,
/// string, number, boolean, or null) with nothing but whitespace after it.
pub fn validate_json(input: &str) -> bool {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    if !value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => false,
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                // Escape: accept any single escaped byte (plus \uXXXX).
                match b.get(*pos + 1) {
                    Some(b'u') => {
                        if b.len() < *pos + 6
                            || !b[*pos + 2..*pos + 6].iter().all(u8::is_ascii_hexdigit)
                        {
                            return false;
                        }
                        *pos += 6;
                    }
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                    _ => return false,
                }
            }
            0x00..=0x1f => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == int_start {
        return false;
    }
    // Leading zeros are invalid JSON ("01"), a lone zero is fine.
    if b[int_start] == b'0' && *pos - int_start > 1 {
        return false;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac_start {
            return false;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp_start {
            return false;
        }
    }
    *pos > start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_values() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e3",
            "0",
            "\"a b\\n\\u00ff\"",
            r#"{"a": [1, 2, {"b": null}], "c": "x"}"#,
            "  { \"k\" : 1 }  ",
        ] {
            assert!(validate_json(ok), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "nulll",
            "\"unterminated",
            "{} trailing",
            "{'a': 1}",
        ] {
            assert!(!validate_json(bad), "{bad}");
        }
    }
}
