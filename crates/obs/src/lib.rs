//! Runtime observability for the medkb pipeline: a thread-safe metrics
//! registry built from `std` atomics only (no external dependencies), plus
//! lightweight scoped span timers.
//!
//! Three metric kinds, all lock-free on the hot path:
//!
//! * [`Counter`] — monotonic `u64`, for work items (queries served,
//!   candidates scanned, cache hits),
//! * [`Gauge`] — last-write-wins `u64`, for configuration echoes and level
//!   readings (worker threads, world size),
//! * [`Histogram`] — fixed-bucket distribution with total count and sum,
//!   for latencies (microseconds) and size distributions.
//!
//! Handles are interned in a [`Registry`]; registration takes a mutex, so
//! callers resolve handles **once** (at engine construction) and record
//! through the `Arc`s afterwards. [`Registry::snapshot`] freezes the whole
//! registry into a [`MetricsSnapshot`] that serializes to deterministic
//! JSON: [`MetricsSnapshot::to_json`] carries everything (wall-clock
//! values included), [`MetricsSnapshot::to_json_stable`] carries only the
//! run-deterministic subset (counters, gauges, and histogram observation
//! counts) and is byte-identical across same-input runs at any thread
//! count — the conformance tests pin it.
//!
//! Metric naming (DESIGN.md §10): dot-separated `component.subject.unit`
//! static strings (`relax.latency_us`, `ingest.stage.mapping_us`). Names
//! are `&'static str` by design — the registry is a fixed, low-cardinality
//! set of series; per-entity labels (per-concept, per-query) are banned.
//!
//! Registered families and their owning name modules: `relax.*`
//! (`medkb_core::relax::obs_names`), `ingest.*`
//! (`medkb_core::ingest::obs_names`), `corpus.*`
//! (`medkb_corpus::counts::obs_names`), `serve.*`
//! (`medkb_serve::obs_names`), and `delta.*`
//! (`medkb_core::delta::obs_names`) — the incremental-ingestion family
//! (DESIGN.md §15): per-apply latency and op throughput plus the
//! fallback counters (`delta.fallback_full_rebuilds`,
//! `delta.full_recounts`, `delta.full_remaps`,
//! `delta.full_freq_recomputes`, `delta.shortcut_reruns`) that say when
//! an apply degenerated to a stage's full recompute. The fallbacks are
//! the family's point: `BENCH_delta.json` gates
//! `delta.fallback_full_rebuilds == 0` on document-only deltas, and an
//! operator alerting on them catches deltas that silently stopped being
//! incremental.

#![warn(missing_docs)]

mod json;
mod registry;
mod snapshot;

pub use json::validate_json;
pub use registry::{Counter, Gauge, Histogram, Registry, SpanTimer, LATENCY_BOUNDS_US};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
