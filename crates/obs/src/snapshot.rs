//! Point-in-time snapshots and their JSON serializations.

use std::collections::BTreeMap;

/// A frozen histogram: bounds, per-bucket counts (last slot = overflow),
/// total count, and value sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive).
    pub bounds: Vec<u64>,
    /// Observation counts per bucket; `bounds.len() + 1` entries, the last
    /// being the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// Everything a [`crate::Registry`] held at snapshot time. `BTreeMap`s keep
/// serialization order independent of registration order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn push_map<V>(
    out: &mut String,
    key: &str,
    map: &BTreeMap<String, V>,
    mut render: impl FnMut(&mut String, &V),
) {
    out.push_str(&format!("\"{key}\": {{"));
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\": "));
        render(out, v);
    }
    out.push('}');
}

impl MetricsSnapshot {
    /// Full deterministic-order JSON: counters, gauges, and complete
    /// histograms (bounds, buckets, count, sum). Values that measure wall
    /// time vary run to run; for a byte-reproducible serialization use
    /// [`MetricsSnapshot::to_json_stable`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_map(&mut out, "counters", &self.counters, |o, v| o.push_str(&v.to_string()));
        out.push_str(", ");
        push_map(&mut out, "gauges", &self.gauges, |o, v| o.push_str(&v.to_string()));
        out.push_str(", ");
        push_map(&mut out, "histograms", &self.histograms, |o, h| {
            let join = |xs: &[u64]| {
                xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ")
            };
            o.push_str(&format!(
                "{{\"count\": {}, \"sum\": {}, \"bounds\": [{}], \"buckets\": [{}]}}",
                h.count,
                h.sum,
                join(&h.bounds),
                join(&h.buckets),
            ));
        });
        out.push('}');
        out
    }

    /// The run-deterministic subset as JSON: counters, gauges, and
    /// histogram observation *counts* (wall-clock-valued buckets and sums
    /// are dropped). For a deterministic workload this serialization is
    /// byte-identical across runs and thread counts — the conformance
    /// suite pins it.
    pub fn to_json_stable(&self) -> String {
        let mut out = String::from("{");
        push_map(&mut out, "counters", &self.counters, |o, v| o.push_str(&v.to_string()));
        out.push_str(", ");
        push_map(&mut out, "gauges", &self.gauges, |o, v| o.push_str(&v.to_string()));
        out.push_str(", ");
        let counts: BTreeMap<String, u64> =
            self.histograms.iter().map(|(k, h)| (k.clone(), h.count)).collect();
        push_map(&mut out, "histogram_counts", &counts, |o, v| o.push_str(&v.to_string()));
        out.push('}');
        out
    }

    /// Whether a counter with this name was registered.
    pub fn has_counter(&self, name: &str) -> bool {
        self.counters.contains_key(name)
    }

    /// Whether a histogram with this name was registered.
    pub fn has_histogram(&self, name: &str) -> bool {
        self.histograms.contains_key(name)
    }

    /// Counter value, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram observation count, or 0 when absent.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms.get(name).map(|h| h.count).unwrap_or(0)
    }

    /// `a / (a + b)` over two counters — the hit-ratio shape
    /// (`ratio(hits, misses)`), usable for any split pair (kept vs pruned,
    /// shed vs served). Returns 0.0 when both counters are zero or absent,
    /// so dashboards and the serve bench never divide by zero.
    pub fn counter_ratio(&self, a: &str, b: &str) -> f64 {
        let x = self.counter(a) as f64;
        let y = self.counter(b) as f64;
        if x + y == 0.0 { 0.0 } else { x / (x + y) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("z.last").add(2);
        r.counter("a.first").add(1);
        r.gauge("m.threads").set(4);
        let h = r.histogram("lat", &[10, 100]);
        h.record(7);
        h.record(700);
        r.snapshot()
    }

    #[test]
    fn json_is_sorted_and_complete() {
        let s = sample();
        let json = s.to_json();
        assert!(crate::validate_json(&json), "{json}");
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "keys must serialize sorted: {json}");
        assert!(json.contains("\"bounds\": [10, 100]"));
        assert!(json.contains("\"buckets\": [1, 0, 1]"));
    }

    #[test]
    fn stable_json_drops_wall_clock_values() {
        let s = sample();
        let json = s.to_json_stable();
        assert!(crate::validate_json(&json), "{json}");
        assert!(json.contains("\"lat\": 2"));
        assert!(!json.contains("sum"));
        assert!(!json.contains("buckets"));
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert!(s.has_counter("a.first") && !s.has_counter("nope"));
        assert!(s.has_histogram("lat"));
        assert_eq!(s.counter("z.last"), 2);
        assert_eq!(s.histogram_count("lat"), 2);
        assert_eq!(s.histogram_count("nope"), 0);
    }

    #[test]
    fn counter_ratio_is_hit_ratio_shaped() {
        let s = sample();
        // 1 hit, 2 misses → 1/3.
        assert_eq!(s.counter_ratio("a.first", "z.last"), 1.0 / 3.0);
        assert_eq!(s.counter_ratio("z.last", "a.first"), 2.0 / 3.0);
        // Both absent → defined 0.0, never NaN.
        assert_eq!(s.counter_ratio("nope", "also.nope"), 0.0);
        // One side absent behaves as zero.
        assert_eq!(s.counter_ratio("z.last", "nope"), 1.0);
    }

    #[test]
    fn empty_snapshot_serializes() {
        let s = MetricsSnapshot::default();
        assert!(crate::validate_json(&s.to_json()));
        assert!(crate::validate_json(&s.to_json_stable()));
    }
}
