//! Skip-gram with negative sampling (word2vec-style), from scratch.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use medkb_corpus::Corpus;
use medkb_types::{Id, IdVec, StringInterner, TokenId};

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// RNG seed (initialization, window sampling, negatives).
    pub seed: u64,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Symmetric context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 10%).
    pub lr: f32,
    /// Frequent-word subsampling threshold (word2vec's `t`); 0 disables.
    pub subsample: f64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_0004,
            dim: 48,
            window: 4,
            negatives: 5,
            epochs: 3,
            lr: 0.05,
            subsample: 1e-3,
        }
    }
}

impl SgnsConfig {
    /// A fast configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self { seed, dim: 24, epochs: 2, ..Self::default() }
    }
}

/// Trained word vectors plus the corpus unigram statistics they came with.
#[derive(Debug, Clone)]
pub struct WordVectors {
    vocab: StringInterner<TokenId>,
    vecs: IdVec<TokenId, Vec<f32>>,
    counts: IdVec<TokenId, u64>,
    total_tokens: u64,
    dim: usize,
}

impl WordVectors {
    /// Train on `corpus`.
    pub fn train(corpus: &Corpus, config: &SgnsConfig) -> Self {
        let vocab = corpus.vocab.clone();
        let n = vocab.len();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Unigram counts.
        let mut counts: IdVec<TokenId, u64> = IdVec::filled(0, n);
        let mut total: u64 = 0;
        for s in corpus.sentences() {
            for &t in &s.tokens {
                counts[t] += 1;
                total += 1;
            }
        }

        // Negative sampling table: unigram^0.75.
        let table = NegativeTable::build(&counts);

        // Input and output matrices. Output starts at zero per word2vec.
        let mut w_in: Vec<f32> = (0..n * config.dim)
            .map(|_| (rng.gen::<f32>() - 0.5) / config.dim as f32)
            .collect();
        let mut w_out: Vec<f32> = vec![0.0; n * config.dim];

        let total_steps = (config.epochs * corpus.token_count()).max(1);
        let mut step = 0usize;
        let dim = config.dim;
        for _epoch in 0..config.epochs {
            for sentence in corpus.sentences() {
                // Frequent-word subsampling.
                let kept: Vec<TokenId> = sentence
                    .tokens
                    .iter()
                    .copied()
                    .filter(|&t| {
                        if config.subsample <= 0.0 {
                            return true;
                        }
                        let f = counts[t] as f64 / total.max(1) as f64;
                        let keep = ((config.subsample / f).sqrt() + config.subsample / f).min(1.0);
                        rng.gen::<f64>() < keep
                    })
                    .collect();
                for (i, &center) in kept.iter().enumerate() {
                    step += 1;
                    let progress = step as f32 / total_steps as f32;
                    let lr = config.lr * (1.0 - 0.9 * progress.min(1.0));
                    let radius = rng.gen_range(1..=config.window);
                    let lo = i.saturating_sub(radius);
                    let hi = (i + radius).min(kept.len() - 1);
                    for (j, &context) in kept[lo..=hi].iter().enumerate() {
                        if lo + j == i {
                            continue;
                        }
                        sgd_pair(
                            &mut w_in,
                            &mut w_out,
                            dim,
                            center.as_usize(),
                            context.as_usize(),
                            true,
                            lr,
                        );
                        for _ in 0..config.negatives {
                            let neg = table.sample(&mut rng);
                            if neg == context.as_usize() {
                                continue;
                            }
                            sgd_pair(&mut w_in, &mut w_out, dim, center.as_usize(), neg, false, lr);
                        }
                    }
                }
            }
        }

        let vecs: IdVec<TokenId, Vec<f32>> =
            (0..n).map(|i| w_in[i * dim..(i + 1) * dim].to_vec()).collect();
        Self { vocab, vecs, counts, total_tokens: total, dim }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The vector of `word`, if in vocabulary.
    pub fn get(&self, word: &str) -> Option<&[f32]> {
        self.vocab.get(word).map(|t| self.vecs[t].as_slice())
    }

    /// Iterate over the vocabulary words.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.vocab.iter().map(|(_, w)| w)
    }

    /// Unigram probability of `word` (0 for OOV).
    pub fn probability(&self, word: &str) -> f64 {
        match self.vocab.get(word) {
            Some(t) => self.counts[t] as f64 / self.total_tokens.max(1) as f64,
            None => 0.0,
        }
    }

    /// Cosine similarity of two in-vocabulary words, `None` if either is
    /// OOV.
    pub fn cosine(&self, a: &str, b: &str) -> Option<f64> {
        let (va, vb) = (self.get(a)?, self.get(b)?);
        Some(cosine(va, vb))
    }

    /// Serialize to a TSV document: a `dim <TAB> total` header, then one
    /// `word <TAB> count <TAB> v1 v2 …` line per vocabulary entry. The
    /// trained model for a paper-scale corpus is a few megabytes — cheap to
    /// cache next to the generated world.
    pub fn write_tsv(&self) -> String {
        let mut out = format!("{}\t{}\n", self.dim, self.total_tokens);
        for (t, w) in self.vocab.iter() {
            let vec_str: Vec<String> =
                self.vecs[t].iter().map(|x| format!("{x:.6e}")).collect();
            out.push_str(&format!("{w}\t{}\t{}\n", self.counts[t], vec_str.join(" ")));
        }
        out
    }

    /// Parse a document produced by [`WordVectors::write_tsv`].
    ///
    /// # Errors
    /// [`medkb_types::MedKbError::Corrupt`] on malformed input.
    pub fn read_tsv(doc: &str) -> medkb_types::Result<Self> {
        use medkb_types::MedKbError;
        let corrupt = |line: usize, what: &str| MedKbError::Corrupt {
            detail: format!("word vectors line {line}: {what}"),
        };
        let mut lines = doc.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| corrupt(1, "missing header"))?;
        let mut hp = header.split('\t');
        let dim: usize = hp
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| corrupt(1, "bad dim"))?;
        let total: u64 = hp
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| corrupt(1, "bad total"))?;
        let mut vocab: StringInterner<TokenId> = StringInterner::new();
        let mut vecs: IdVec<TokenId, Vec<f32>> = IdVec::new();
        let mut counts: IdVec<TokenId, u64> = IdVec::new();
        for (i, line) in lines {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (word, count, values) = match (parts.next(), parts.next(), parts.next()) {
                (Some(w), Some(c), Some(v)) if !w.is_empty() => (w, c, v),
                _ => return Err(corrupt(i + 1, "expected 3 tab fields")),
            };
            let count: u64 = count.parse().map_err(|_| corrupt(i + 1, "bad count"))?;
            let vec: Vec<f32> = values
                .split(' ')
                .map(|x| x.parse::<f32>())
                .collect::<std::result::Result<_, _>>()
                .map_err(|_| corrupt(i + 1, "bad vector component"))?;
            if vec.len() != dim {
                return Err(corrupt(i + 1, "vector dimensionality mismatch"));
            }
            if vocab.get(word).is_some() {
                return Err(corrupt(i + 1, "duplicate word"));
            }
            vocab.intern(word);
            vecs.push(vec);
            counts.push(count);
        }
        Ok(Self { vocab, vecs, counts, total_tokens: total, dim })
    }

    /// The `k` vocabulary words most cosine-similar to `word` (excluding
    /// the word itself); empty for OOV input.
    pub fn most_similar(&self, word: &str, k: usize) -> Vec<(&str, f64)> {
        let Some(v) = self.get(word) else { return Vec::new() };
        let mut scored: Vec<(&str, f64)> = self
            .vocab
            .iter()
            .filter(|(_, w)| *w != word)
            .map(|(t, w)| (w, cosine(v, &self.vecs[t])))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        scored.truncate(k);
        scored
    }
}

/// Cosine similarity of two equal-length vectors (0 if either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// One SGD update on a (center, context) pair with the given label.
fn sgd_pair(
    w_in: &mut [f32],
    w_out: &mut [f32],
    dim: usize,
    center: usize,
    other: usize,
    positive: bool,
    lr: f32,
) {
    let (ci, oi) = (center * dim, other * dim);
    let mut dot = 0.0f32;
    for d in 0..dim {
        dot += w_in[ci + d] * w_out[oi + d];
    }
    let label = if positive { 1.0 } else { 0.0 };
    let g = lr * (label - sigmoid(dot));
    for d in 0..dim {
        let inp = w_in[ci + d];
        let out = w_out[oi + d];
        w_in[ci + d] += g * out;
        w_out[oi + d] += g * inp;
    }
}

/// Unigram^0.75 negative sampling table.
struct NegativeTable {
    cum: Vec<f64>,
}

impl NegativeTable {
    fn build(counts: &IdVec<TokenId, u64>) -> Self {
        let mut cum = Vec::with_capacity(counts.len());
        let mut total = 0.0;
        for (_, &c) in counts.iter() {
            total += (c as f64).powf(0.75);
            cum.push(total);
        }
        Self { cum }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cum.last().unwrap_or(&0.0);
        if total <= 0.0 {
            return 0;
        }
        let target = rng.gen::<f64>() * total;
        self.cum.partition_point(|&x| x < target).min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_corpus::{Corpus, Document, Sentence};
    use medkb_snomed::ContextTag;
    use medkb_text::tokenize;

    /// A tiny corpus with two clearly separated topics: (apple, banana,
    /// fruit) vs (bolt, wrench, tool). SGNS should place same-topic words
    /// closer.
    fn topic_corpus() -> Corpus {
        let mut c = Corpus::new();
        let mut sent = |text: &str, c: &mut Corpus| Sentence {
            tag: ContextTag::General,
            tokens: tokenize(text).into_iter().map(|t| c.vocab.intern(&t)).collect(),
        };
        let fruit = [
            "the apple is a sweet fruit",
            "a banana is a yellow fruit",
            "fresh fruit like apple and banana tastes sweet",
            "the sweet banana and the apple are fruit",
        ];
        let tools = [
            "the bolt is turned with a wrench",
            "a wrench is a metal tool",
            "every tool like bolt and wrench is metal",
            "the metal wrench and the bolt are tool",
        ];
        for _ in 0..30 {
            for t in fruit.iter().chain(tools.iter()) {
                let s = sent(t, &mut c);
                c.docs.push(Document { sentences: vec![s] });
            }
        }
        c
    }

    #[test]
    fn learns_topic_separation() {
        let corpus = topic_corpus();
        let wv = WordVectors::train(&corpus, &SgnsConfig { subsample: 0.0, ..SgnsConfig::tiny(3) });
        let same = wv.cosine("apple", "banana").unwrap();
        let cross = wv.cosine("apple", "wrench").unwrap();
        assert!(
            same > cross,
            "same-topic {same:.3} should exceed cross-topic {cross:.3}"
        );
    }

    #[test]
    fn oov_is_none() {
        let corpus = topic_corpus();
        let wv = WordVectors::train(&corpus, &SgnsConfig::tiny(4));
        assert!(wv.get("zeppelin").is_none());
        assert_eq!(wv.probability("zeppelin"), 0.0);
        assert!(wv.cosine("apple", "zeppelin").is_none());
    }

    #[test]
    fn deterministic_training() {
        let corpus = topic_corpus();
        let a = WordVectors::train(&corpus, &SgnsConfig::tiny(5));
        let b = WordVectors::train(&corpus, &SgnsConfig::tiny(5));
        assert_eq!(a.get("apple").unwrap(), b.get("apple").unwrap());
    }

    #[test]
    fn probability_sums_to_one() {
        let corpus = topic_corpus();
        let wv = WordVectors::train(&corpus, &SgnsConfig::tiny(6));
        let sum: f64 = corpus.vocab.iter().map(|(_, w)| wv.probability(w)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "{sum}");
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!((cosine(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn most_similar_surfaces_topic_mates() {
        let corpus = topic_corpus();
        let wv = WordVectors::train(&corpus, &SgnsConfig { subsample: 0.0, ..SgnsConfig::tiny(9) });
        let top: Vec<&str> = wv.most_similar("apple", 5).into_iter().map(|(w, _)| w).collect();
        assert!(top.contains(&"banana") || top.contains(&"fruit"), "{top:?}");
        assert!(!top.contains(&"apple"));
        assert!(wv.most_similar("zeppelin", 3).is_empty());
        assert_eq!(wv.most_similar("apple", 2).len(), 2);
    }

    #[test]
    fn tsv_roundtrip_preserves_everything() {
        let corpus = topic_corpus();
        let wv = WordVectors::train(&corpus, &SgnsConfig::tiny(12));
        let doc = wv.write_tsv();
        let back = WordVectors::read_tsv(&doc).unwrap();
        assert_eq!(back.dim(), wv.dim());
        assert_eq!(back.vocab_size(), wv.vocab_size());
        for w in wv.words() {
            assert_eq!(back.probability(w), wv.probability(w), "{w}");
            let (a, b) = (wv.get(w).unwrap(), back.get(w).unwrap());
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn tsv_rejects_malformed_input() {
        assert!(WordVectors::read_tsv("").is_err());
        assert!(WordVectors::read_tsv("x\t10\n").is_err());
        assert!(WordVectors::read_tsv("2\t10\nword\t1\t0.5\n").is_err()); // dim mismatch
        assert!(WordVectors::read_tsv("1\t10\nword\tx\t0.5\n").is_err());
        assert!(WordVectors::read_tsv("1\t10\nw\t1\t0.5\nw\t1\t0.5\n").is_err());
    }

    #[test]
    fn dim_and_vocab_accessors() {
        let corpus = topic_corpus();
        let wv = WordVectors::train(&corpus, &SgnsConfig::tiny(7));
        assert_eq!(wv.dim(), 24);
        assert_eq!(wv.vocab_size(), corpus.vocab.len());
        assert_eq!(wv.get("apple").unwrap().len(), 24);
    }
}
