//! Skip-gram with negative sampling (word2vec-style), from scratch.
//!
//! Training is minibatch SGD: each batch of sentences computes its update
//! coefficients against the weights frozen at batch start and applies them
//! in sentence order, which makes the gradient computation embarrassingly
//! parallel without sacrificing bit-exact determinism (DESIGN.md §9).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use medkb_corpus::Corpus;
use medkb_types::{Id, IdVec, StringInterner, TokenId};

/// Metric names the SGNS trainer records (DESIGN.md §10).
pub mod obs_names {
    /// Wall time per training epoch (µs histogram).
    pub const EPOCH_US: &str = "embed.sgns.epoch_us";
    /// Training epochs completed (counter).
    pub const EPOCHS: &str = "embed.sgns.epochs";
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// RNG seed (initialization, window sampling, negatives).
    pub seed: u64,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Symmetric context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed to 10%).
    pub lr: f32,
    /// Frequent-word subsampling threshold (word2vec's `t`); 0 disables.
    pub subsample: f64,
    /// Sentences per minibatch: gradients inside one batch are computed
    /// against the weights frozen at batch start, then applied in
    /// sentence order. Smaller batches track online SGD more closely;
    /// larger batches expose more parallelism but overshoot on frequent
    /// words once too many same-point gradients pile onto one row (the
    /// default 8 matches online-SGD quality on the mapper calibration
    /// corpora).
    pub batch_sentences: usize,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_0004,
            dim: 48,
            window: 4,
            negatives: 5,
            epochs: 3,
            lr: 0.05,
            subsample: 1e-3,
            batch_sentences: 8,
        }
    }
}

impl SgnsConfig {
    /// A fast configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self { seed, dim: 24, epochs: 2, ..Self::default() }
    }
}

/// Trained word vectors plus the corpus unigram statistics they came with.
#[derive(Debug, Clone)]
pub struct WordVectors {
    vocab: StringInterner<TokenId>,
    vecs: IdVec<TokenId, Vec<f32>>,
    counts: IdVec<TokenId, u64>,
    total_tokens: u64,
    dim: usize,
}

/// Flat-array decomposition of [`WordVectors`] for lossless persistence:
/// vocabulary in token-id order, vectors concatenated row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct WordVectorParts {
    /// Vocabulary words in token-id order.
    pub words: Vec<String>,
    /// All vectors concatenated row-major (`words.len() × dim`).
    pub vecs: Vec<f32>,
    /// Corpus count per word, token-id order.
    pub counts: Vec<u64>,
    /// Total token count of the training corpus.
    pub total_tokens: u64,
    /// Embedding dimensionality.
    pub dim: u64,
}

impl WordVectorParts {
    /// Bit-level equality. Unlike the derived `PartialEq`, this treats a
    /// NaN as equal to the same NaN bit pattern (and `0.0` as distinct
    /// from `-0.0`) — large SGNS runs can diverge into NaN rows, and a
    /// bit-identity oracle must not report two identical such models as
    /// different.
    pub fn bits_eq(&self, other: &Self) -> bool {
        self.words == other.words
            && crate::f32_bits_eq(&self.vecs, &other.vecs)
            && self.counts == other.counts
            && self.total_tokens == other.total_tokens
            && self.dim == other.dim
    }
}

impl WordVectors {
    /// Train on `corpus` (single worker; see
    /// [`WordVectors::train_with_threads`] for the sharded form — both are
    /// pinned bit-identical to [`WordVectors::train_reference`]).
    pub fn train(corpus: &Corpus, config: &SgnsConfig) -> Self {
        Self::train_with_threads(corpus, config, 1)
    }

    /// Minibatch SGNS, sharding gradient *computation* over `threads`
    /// scoped workers while keeping gradient *application* sequential.
    ///
    /// Each minibatch (`config.batch_sentences` sentences) freezes the
    /// weight matrices, computes every update coefficient `g` against that
    /// frozen state — pure per sentence thanks to two independent
    /// splitmix64-derived RNG streams per (epoch, sentence) — and then
    /// applies the updates in sentence/op order against a snapshot of the
    /// touched rows. Nothing about the result depends on how sentences
    /// were sharded, so the output is bit-identical for every `threads`
    /// value (see DESIGN.md §9).
    pub fn train_with_threads(corpus: &Corpus, config: &SgnsConfig, threads: usize) -> Self {
        Self::train_with_threads_obs(corpus, config, threads, None)
    }

    /// [`WordVectors::train_with_threads`] with optional instrumentation:
    /// records per-epoch wall time and the epoch count into `obs` (metric
    /// names in [`obs_names`]). `None` is exactly the plain call.
    pub fn train_with_threads_obs(
        corpus: &Corpus,
        config: &SgnsConfig,
        threads: usize,
        obs: Option<&medkb_obs::Registry>,
    ) -> Self {
        let (vocab, counts, total, table, mut w_in, mut w_out) = init_state(corpus, config);
        let n = vocab.len();
        let dim = config.dim;

        let sentences: Vec<&[TokenId]> =
            corpus.sentences().map(|s| s.tokens.as_slice()).collect();
        let total_steps = (config.epochs * corpus.token_count()).max(1);
        let batch = config.batch_sentences.max(1);
        let mut snap_in = RowSnapshot::new(n);
        let mut snap_out = RowSnapshot::new(n);
        let mut step_base = 0usize;

        let epoch_timer = obs.map(|reg| reg.latency(obs_names::EPOCH_US));
        let epoch_counter = obs.map(|reg| reg.counter(obs_names::EPOCHS));
        for epoch in 0..config.epochs {
            let _span = epoch_timer.as_deref().map(|h| h.time());
            if let Some(c) = &epoch_counter {
                c.inc();
            }
            let mut s0 = 0usize;
            while s0 < sentences.len() {
                let s1 = (s0 + batch).min(sentences.len());
                let batch_sentences = &sentences[s0..s1];

                // Phase 1: frequent-word subsampling, one independent RNG
                // stream per sentence (thread-partitioning can't shift it).
                let kept: Vec<Vec<TokenId>> = shard_map(batch_sentences.len(), threads, |i| {
                    let mut rng = StdRng::seed_from_u64(sentence_seed(
                        config.seed,
                        epoch,
                        s0 + i,
                        0,
                    ));
                    kept_tokens(batch_sentences[i], &counts, total, config.subsample, &mut rng)
                });
                let mut starts = Vec::with_capacity(kept.len());
                let mut acc = step_base;
                for k in &kept {
                    starts.push(acc);
                    acc += k.len();
                }

                // Phase 2: update coefficients against the frozen weights.
                let per_sentence: Vec<Vec<Op>> = shard_map(kept.len(), threads, |i| {
                    let mut rng = StdRng::seed_from_u64(sentence_seed(
                        config.seed,
                        epoch,
                        s0 + i,
                        1,
                    ));
                    let mut out = Vec::new();
                    sentence_ops(
                        &kept[i],
                        starts[i],
                        total_steps,
                        config,
                        &table,
                        &w_in,
                        &w_out,
                        &mut rng,
                        &mut out,
                    );
                    out
                });

                // Phase 3: sequential application in sentence/op order.
                let mut ops = Vec::new();
                for v in per_sentence {
                    ops.extend(v);
                }
                apply_ops(&ops, &mut w_in, &mut w_out, dim, &mut snap_in, &mut snap_out);
                step_base = acc;
                s0 = s1;
            }
        }

        let vecs: IdVec<TokenId, Vec<f32>> =
            (0..n).map(|i| w_in[i * dim..(i + 1) * dim].to_vec()).collect();
        Self { vocab, vecs, counts, total_tokens: total, dim }
    }

    /// The bit-exactness oracle the sharded trainer is pinned against: the
    /// same minibatch algorithm written as straight-line sequential loops
    /// with a naïve per-batch row snapshot (the `relax_concept_reference`
    /// discipline from DESIGN.md §8).
    pub fn train_reference(corpus: &Corpus, config: &SgnsConfig) -> Self {
        let (vocab, counts, total, table, mut w_in, mut w_out) = init_state(corpus, config);
        let n = vocab.len();
        let dim = config.dim;

        let sentences: Vec<&[TokenId]> =
            corpus.sentences().map(|s| s.tokens.as_slice()).collect();
        let total_steps = (config.epochs * corpus.token_count()).max(1);
        let batch = config.batch_sentences.max(1);
        let mut step_base = 0usize;

        for epoch in 0..config.epochs {
            let mut s0 = 0usize;
            while s0 < sentences.len() {
                let s1 = (s0 + batch).min(sentences.len());
                let mut ops = Vec::new();
                let mut steps = 0usize;
                for (off, sent) in sentences[s0..s1].iter().enumerate() {
                    let idx = s0 + off;
                    let mut keep_rng =
                        StdRng::seed_from_u64(sentence_seed(config.seed, epoch, idx, 0));
                    let kept = kept_tokens(sent, &counts, total, config.subsample, &mut keep_rng);
                    let mut pair_rng =
                        StdRng::seed_from_u64(sentence_seed(config.seed, epoch, idx, 1));
                    sentence_ops(
                        &kept,
                        step_base + steps,
                        total_steps,
                        config,
                        &table,
                        &w_in,
                        &w_out,
                        &mut pair_rng,
                        &mut ops,
                    );
                    steps += kept.len();
                }
                step_base += steps;

                let mut snap_in: HashMap<usize, Vec<f32>> = HashMap::new();
                let mut snap_out: HashMap<usize, Vec<f32>> = HashMap::new();
                for op in &ops {
                    let (c, o) = (op.center as usize, op.other as usize);
                    snap_in.entry(c).or_insert_with(|| w_in[c * dim..(c + 1) * dim].to_vec());
                    snap_out.entry(o).or_insert_with(|| w_out[o * dim..(o + 1) * dim].to_vec());
                }
                for op in &ops {
                    let (c, o) = (op.center as usize, op.other as usize);
                    let sin = &snap_in[&c];
                    let sout = &snap_out[&o];
                    for d in 0..dim {
                        w_in[c * dim + d] += op.g * sout[d];
                        w_out[o * dim + d] += op.g * sin[d];
                    }
                }
                s0 = s1;
            }
        }

        let vecs: IdVec<TokenId, Vec<f32>> =
            (0..n).map(|i| w_in[i * dim..(i + 1) * dim].to_vec()).collect();
        Self { vocab, vecs, counts, total_tokens: total, dim }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The vector of `word`, if in vocabulary.
    pub fn get(&self, word: &str) -> Option<&[f32]> {
        self.vocab.get(word).map(|t| self.vecs[t].as_slice())
    }

    /// Iterate over the vocabulary words.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.vocab.iter().map(|(_, w)| w)
    }

    /// Unigram probability of `word` (0 for OOV).
    pub fn probability(&self, word: &str) -> f64 {
        match self.vocab.get(word) {
            Some(t) => self.counts[t] as f64 / self.total_tokens.max(1) as f64,
            None => 0.0,
        }
    }

    /// Cosine similarity of two in-vocabulary words, `None` if either is
    /// OOV.
    pub fn cosine(&self, a: &str, b: &str) -> Option<f64> {
        let (va, vb) = (self.get(a)?, self.get(b)?);
        Some(cosine(va, vb))
    }

    /// Decompose into flat arrays for lossless binary persistence
    /// (medkb-store). Unlike [`WordVectors::write_tsv`], which rounds to
    /// six significant digits, the parts carry exact f32/u64 bit patterns;
    /// `from_parts(to_parts())` is bit-identical.
    pub fn to_parts(&self) -> WordVectorParts {
        let mut vecs = Vec::with_capacity(self.vocab.len() * self.dim);
        for (_, v) in self.vecs.iter() {
            vecs.extend_from_slice(v);
        }
        WordVectorParts {
            words: self.vocab.iter().map(|(_, w)| w.to_string()).collect(),
            vecs,
            counts: self.counts.as_slice().to_vec(),
            total_tokens: self.total_tokens,
            dim: self.dim as u64,
        }
    }

    /// Rebuild from [`WordVectors::to_parts`] output. Words are re-interned
    /// in order, so token ids match the original exactly.
    pub fn from_parts(parts: WordVectorParts) -> Self {
        let dim = parts.dim as usize;
        let mut vocab: StringInterner<TokenId> = StringInterner::with_capacity(parts.words.len());
        for w in &parts.words {
            vocab.intern(w);
        }
        let vecs: IdVec<TokenId, Vec<f32>> = parts
            .vecs
            .chunks_exact(dim.max(1))
            .map(|row| row.to_vec())
            .take(parts.words.len())
            .collect();
        let counts: IdVec<TokenId, u64> = parts.counts.into_iter().collect();
        Self { vocab, vecs, counts, total_tokens: parts.total_tokens, dim }
    }

    /// Serialize to a TSV document: a `dim <TAB> total` header, then one
    /// `word <TAB> count <TAB> v1 v2 …` line per vocabulary entry. The
    /// trained model for a paper-scale corpus is a few megabytes — cheap to
    /// cache next to the generated world.
    pub fn write_tsv(&self) -> String {
        let mut out = format!("{}\t{}\n", self.dim, self.total_tokens);
        for (t, w) in self.vocab.iter() {
            let vec_str: Vec<String> =
                self.vecs[t].iter().map(|x| format!("{x:.6e}")).collect();
            out.push_str(&format!("{w}\t{}\t{}\n", self.counts[t], vec_str.join(" ")));
        }
        out
    }

    /// Parse a document produced by [`WordVectors::write_tsv`].
    ///
    /// # Errors
    /// [`medkb_types::MedKbError::Validation`] listing **every** malformed
    /// row (bad field count, bad count, non-finite or wrong-arity vector,
    /// duplicate word) with line numbers; a broken header is reported
    /// immediately since nothing after it can be interpreted.
    pub fn read_tsv(doc: &str) -> medkb_types::Result<Self> {
        use medkb_types::ValidationReport;
        let mut report = ValidationReport::new();
        let mut lines = doc.lines().enumerate();
        let header = match lines.next() {
            Some((_, h)) => h,
            None => {
                report.defect("word vectors", Some(1), "missing header");
                return report.into_result().map(|()| unreachable!());
            }
        };
        let mut hp = header.split('\t');
        let dim: Option<usize> = hp.next().and_then(|x| x.parse().ok());
        let total: Option<u64> = hp.next().and_then(|x| x.parse().ok());
        let (Some(dim), Some(total)) = (dim, total) else {
            report.defect("word vectors", Some(1), "bad header (want `dim <TAB> total`)");
            return report.into_result().map(|()| unreachable!());
        };
        let mut vocab: StringInterner<TokenId> = StringInterner::new();
        let mut vecs: IdVec<TokenId, Vec<f32>> = IdVec::new();
        let mut counts: IdVec<TokenId, u64> = IdVec::new();
        for (i, line) in lines {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (word, count, values) = match (parts.next(), parts.next(), parts.next()) {
                (Some(w), Some(c), Some(v)) if !w.is_empty() => (w, c, v),
                _ => {
                    report.defect("word vectors", Some(i + 1), "expected 3 tab fields");
                    continue;
                }
            };
            let count: u64 = match count.parse() {
                Ok(c) => c,
                Err(_) => {
                    report.defect("word vectors", Some(i + 1), "bad count");
                    continue;
                }
            };
            let vec: Vec<f32> = match values
                .split(' ')
                .map(|x| x.parse::<f32>())
                .collect::<std::result::Result<_, _>>()
            {
                Ok(v) => v,
                Err(_) => {
                    report.defect("word vectors", Some(i + 1), "bad vector component");
                    continue;
                }
            };
            if vec.iter().any(|x| !x.is_finite()) {
                // A NaN/∞ component would silently poison every cosine
                // similarity computed downstream.
                report.defect("word vectors", Some(i + 1), "non-finite vector component");
                continue;
            }
            if vec.len() != dim {
                report.defect("word vectors", Some(i + 1), "vector dimensionality mismatch");
                continue;
            }
            if vocab.get(word).is_some() {
                report.defect("word vectors", Some(i + 1), "duplicate word");
                continue;
            }
            vocab.intern(word);
            vecs.push(vec);
            counts.push(count);
        }
        report.into_result_with(Self { vocab, vecs, counts, total_tokens: total, dim })
    }

    /// The `k` vocabulary words most cosine-similar to `word` (excluding
    /// the word itself); empty for OOV input.
    pub fn most_similar(&self, word: &str, k: usize) -> Vec<(&str, f64)> {
        let Some(v) = self.get(word) else { return Vec::new() };
        let mut scored: Vec<(&str, f64)> = self
            .vocab
            .iter()
            .filter(|(_, w)| *w != word)
            .map(|(t, w)| (w, cosine(v, &self.vecs[t])))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        scored.truncate(k);
        scored
    }
}

/// Cosine similarity of two equal-length vectors (0 if either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Everything [`init_state`] hands to a trainer: `(vocab, counts,
/// total_tokens, negative_table, w_in, w_out)`.
type TrainerState =
    (StringInterner<TokenId>, IdVec<TokenId, u64>, u64, NegativeTable, Vec<f32>, Vec<f32>);

/// Unigram counts, negative table, and word2vec-initialized matrices
/// (input rows uniform in `±0.5/dim`, output rows zero) shared by every
/// trainer variant.
fn init_state(corpus: &Corpus, config: &SgnsConfig) -> TrainerState {
    let vocab = corpus.vocab.clone();
    let n = vocab.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut counts: IdVec<TokenId, u64> = IdVec::filled(0, n);
    let mut total: u64 = 0;
    for s in corpus.sentences() {
        for &t in &s.tokens {
            counts[t] += 1;
            total += 1;
        }
    }
    let table = NegativeTable::build(&counts);
    let w_in: Vec<f32> =
        (0..n * config.dim).map(|_| (rng.gen::<f32>() - 0.5) / config.dim as f32).collect();
    let w_out: Vec<f32> = vec![0.0; n * config.dim];
    (vocab, counts, total, table, w_in, w_out)
}

/// One deferred SGD update: `w_in[center] += g·w_out_snap[other]` and
/// `w_out[other] += g·w_in_snap[center]`, where `g` is pre-scaled by the
/// learning rate and the snapshots are the batch-start weights.
#[derive(Debug, Clone, Copy)]
struct Op {
    center: u32,
    other: u32,
    g: f32,
}

/// SplitMix64 finalizer — cheap, well-mixed stream splitting for the
/// per-sentence RNGs (independent of thread partitioning by construction).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of one of the two independent per-(epoch, sentence) RNG streams
/// (`stream` 0 = subsampling draws, 1 = window radii and negatives).
fn sentence_seed(seed: u64, epoch: usize, sentence: usize, stream: u64) -> u64 {
    splitmix64(
        splitmix64(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
            .wrapping_add((epoch as u64) << 32)
            .wrapping_add(sentence as u64),
    )
}

/// Frequent-word subsampling of one sentence (word2vec's keep rule).
fn kept_tokens(
    tokens: &[TokenId],
    counts: &IdVec<TokenId, u64>,
    total: u64,
    subsample: f64,
    rng: &mut StdRng,
) -> Vec<TokenId> {
    tokens
        .iter()
        .copied()
        .filter(|&t| {
            if subsample <= 0.0 {
                return true;
            }
            let f = counts[t] as f64 / total.max(1) as f64;
            let keep = ((subsample / f).sqrt() + subsample / f).min(1.0);
            rng.gen::<f64>() < keep
        })
        .collect()
}

/// Append one sentence's update ops, coefficients computed against the
/// frozen batch-start weights.
#[allow(clippy::too_many_arguments)]
fn sentence_ops(
    kept: &[TokenId],
    start_step: usize,
    total_steps: usize,
    config: &SgnsConfig,
    table: &NegativeTable,
    w_in: &[f32],
    w_out: &[f32],
    rng: &mut StdRng,
    out: &mut Vec<Op>,
) {
    let dim = config.dim;
    for (i, &center) in kept.iter().enumerate() {
        let step = start_step + i + 1;
        let progress = step as f32 / total_steps as f32;
        let lr = config.lr * (1.0 - 0.9 * progress.min(1.0));
        let radius = rng.gen_range(1..=config.window);
        let lo = i.saturating_sub(radius);
        let hi = (i + radius).min(kept.len() - 1);
        for (j, &context) in kept[lo..=hi].iter().enumerate() {
            if lo + j == i {
                continue;
            }
            out.push(make_op(w_in, w_out, dim, center.as_usize(), context.as_usize(), true, lr));
            for _ in 0..config.negatives {
                let neg = table.sample(rng);
                if neg == context.as_usize() {
                    continue;
                }
                out.push(make_op(w_in, w_out, dim, center.as_usize(), neg, false, lr));
            }
        }
    }
}

/// The SGNS gradient coefficient of one (center, other) pair.
fn make_op(
    w_in: &[f32],
    w_out: &[f32],
    dim: usize,
    center: usize,
    other: usize,
    positive: bool,
    lr: f32,
) -> Op {
    let (ci, oi) = (center * dim, other * dim);
    let mut dot = 0.0f32;
    for d in 0..dim {
        dot += w_in[ci + d] * w_out[oi + d];
    }
    let label = if positive { 1.0 } else { 0.0 };
    Op { center: center as u32, other: other as u32, g: lr * (label - sigmoid(dot)) }
}

/// Reusable buffer capturing the batch-start value of every touched matrix
/// row exactly once (epoch-stamped, so reset is O(1) per batch).
struct RowSnapshot {
    stamp: Vec<u32>,
    slot: Vec<u32>,
    epoch: u32,
    data: Vec<f32>,
}

impl RowSnapshot {
    fn new(rows: usize) -> Self {
        Self { stamp: vec![0; rows], slot: vec![0; rows], epoch: 0, data: Vec::new() }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.data.clear();
    }

    fn capture(&mut self, row: usize, src: &[f32], dim: usize) {
        if self.stamp[row] != self.epoch {
            self.stamp[row] = self.epoch;
            self.slot[row] = (self.data.len() / dim) as u32;
            self.data.extend_from_slice(&src[row * dim..(row + 1) * dim]);
        }
    }

    fn row(&self, row: usize, dim: usize) -> &[f32] {
        let s = self.slot[row] as usize * dim;
        &self.data[s..s + dim]
    }
}

/// Apply a batch's ops in order against the batch-start snapshot. Every
/// update reads snapshot rows only, so per-row accumulation order (= op
/// order) is the single float-summation degree of freedom — and it is
/// fixed, making the result independent of how the ops were computed.
fn apply_ops(
    ops: &[Op],
    w_in: &mut [f32],
    w_out: &mut [f32],
    dim: usize,
    snap_in: &mut RowSnapshot,
    snap_out: &mut RowSnapshot,
) {
    snap_in.begin();
    snap_out.begin();
    for op in ops {
        snap_in.capture(op.center as usize, w_in, dim);
        snap_out.capture(op.other as usize, w_out, dim);
    }
    for op in ops {
        let ci = op.center as usize * dim;
        let oi = op.other as usize * dim;
        let sin = snap_in.row(op.center as usize, dim);
        let sout = snap_out.row(op.other as usize, dim);
        for d in 0..dim {
            w_in[ci + d] += op.g * sout[d];
            w_out[oi + d] += op.g * sin[d];
        }
    }
}

/// Map `f` over `0..len` across `threads` contiguous shards, concatenating
/// the per-shard results in index order — identical to the sequential map
/// whenever `f` is pure per index.
fn shard_map<T: Send, F: Fn(usize) -> T + Sync>(len: usize, threads: usize, f: F) -> Vec<T> {
    if threads <= 1 || len < 2 {
        return (0..len).map(f).collect();
    }
    let shard = len.div_ceil(threads).max(1);
    let bounds: Vec<(usize, usize)> =
        (0..len).step_by(shard).map(|lo| (lo, (lo + shard).min(len))).collect();
    let parts: Vec<Vec<T>> = crossbeam::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| s.spawn(move |_| (lo..hi).map(f).collect::<Vec<T>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("sgns worker")).collect()
    })
    .expect("sgns scope");
    parts.into_iter().flatten().collect()
}

/// Unigram^0.75 negative sampling table.
struct NegativeTable {
    cum: Vec<f64>,
}

impl NegativeTable {
    fn build(counts: &IdVec<TokenId, u64>) -> Self {
        let mut cum = Vec::with_capacity(counts.len());
        let mut total = 0.0;
        for (_, &c) in counts.iter() {
            total += (c as f64).powf(0.75);
            cum.push(total);
        }
        Self { cum }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cum.last().unwrap_or(&0.0);
        if total <= 0.0 {
            return 0;
        }
        let target = rng.gen::<f64>() * total;
        self.cum.partition_point(|&x| x < target).min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medkb_corpus::{Corpus, Document, Sentence};
    use medkb_snomed::ContextTag;
    use medkb_text::tokenize;

    /// A tiny corpus with two clearly separated topics: (apple, banana,
    /// fruit) vs (bolt, wrench, tool). SGNS should place same-topic words
    /// closer.
    fn topic_corpus() -> Corpus {
        let mut c = Corpus::new();
        let sent = |text: &str, c: &mut Corpus| Sentence {
            tag: ContextTag::General,
            tokens: tokenize(text).into_iter().map(|t| c.vocab.intern(&t)).collect(),
        };
        let fruit = [
            "the apple is a sweet fruit",
            "a banana is a yellow fruit",
            "fresh fruit like apple and banana tastes sweet",
            "the sweet banana and the apple are fruit",
        ];
        let tools = [
            "the bolt is turned with a wrench",
            "a wrench is a metal tool",
            "every tool like bolt and wrench is metal",
            "the metal wrench and the bolt are tool",
        ];
        for _ in 0..30 {
            for t in fruit.iter().chain(tools.iter()) {
                let s = sent(t, &mut c);
                c.docs.push(Document { sentences: vec![s] });
            }
        }
        c
    }

    #[test]
    fn learns_topic_separation() {
        let corpus = topic_corpus();
        let wv = WordVectors::train(&corpus, &SgnsConfig { subsample: 0.0, ..SgnsConfig::tiny(3) });
        let same = wv.cosine("apple", "banana").unwrap();
        let cross = wv.cosine("apple", "wrench").unwrap();
        assert!(
            same > cross,
            "same-topic {same:.3} should exceed cross-topic {cross:.3}"
        );
    }

    #[test]
    fn oov_is_none() {
        let corpus = topic_corpus();
        let wv = WordVectors::train(&corpus, &SgnsConfig::tiny(4));
        assert!(wv.get("zeppelin").is_none());
        assert_eq!(wv.probability("zeppelin"), 0.0);
        assert!(wv.cosine("apple", "zeppelin").is_none());
    }

    #[test]
    fn deterministic_training() {
        let corpus = topic_corpus();
        let a = WordVectors::train(&corpus, &SgnsConfig::tiny(5));
        let b = WordVectors::train(&corpus, &SgnsConfig::tiny(5));
        assert_eq!(a.get("apple").unwrap(), b.get("apple").unwrap());
    }

    #[test]
    fn train_matches_reference_bit_identically() {
        let corpus = topic_corpus();
        let configs = [
            SgnsConfig::tiny(5),
            SgnsConfig { subsample: 0.0, batch_sentences: 7, ..SgnsConfig::tiny(11) },
            SgnsConfig { batch_sentences: 1, ..SgnsConfig::tiny(13) },
        ];
        for cfg in &configs {
            let reference = WordVectors::train_reference(&corpus, cfg);
            let trained = WordVectors::train(&corpus, cfg);
            for w in reference.words() {
                assert_eq!(trained.get(w), reference.get(w), "train vs reference, {w}");
            }
            for threads in [2, 4, 8] {
                let par = WordVectors::train_with_threads(&corpus, cfg, threads);
                for w in reference.words() {
                    assert_eq!(par.get(w), reference.get(w), "threads={threads} word={w}");
                }
            }
        }
    }

    #[test]
    fn probability_sums_to_one() {
        let corpus = topic_corpus();
        let wv = WordVectors::train(&corpus, &SgnsConfig::tiny(6));
        let sum: f64 = corpus.vocab.iter().map(|(_, w)| wv.probability(w)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "{sum}");
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!((cosine(&[1.0, 1.0], &[-1.0, -1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn most_similar_surfaces_topic_mates() {
        let corpus = topic_corpus();
        // Seed re-pinned (9 → 11) for the minibatch trainer; see
        // EXPERIMENTS.md.
        let wv = WordVectors::train(&corpus, &SgnsConfig { subsample: 0.0, ..SgnsConfig::tiny(11) });
        let top: Vec<&str> = wv.most_similar("apple", 5).into_iter().map(|(w, _)| w).collect();
        assert!(top.contains(&"banana") || top.contains(&"fruit"), "{top:?}");
        assert!(!top.contains(&"apple"));
        assert!(wv.most_similar("zeppelin", 3).is_empty());
        assert_eq!(wv.most_similar("apple", 2).len(), 2);
    }

    #[test]
    fn tsv_roundtrip_preserves_everything() {
        let corpus = topic_corpus();
        let wv = WordVectors::train(&corpus, &SgnsConfig::tiny(12));
        let doc = wv.write_tsv();
        let back = WordVectors::read_tsv(&doc).unwrap();
        assert_eq!(back.dim(), wv.dim());
        assert_eq!(back.vocab_size(), wv.vocab_size());
        for w in wv.words() {
            assert_eq!(back.probability(w), wv.probability(w), "{w}");
            let (a, b) = (wv.get(w).unwrap(), back.get(w).unwrap());
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn tsv_rejects_malformed_input() {
        assert!(WordVectors::read_tsv("").is_err());
        assert!(WordVectors::read_tsv("x\t10\n").is_err());
        assert!(WordVectors::read_tsv("2\t10\nword\t1\t0.5\n").is_err()); // dim mismatch
        assert!(WordVectors::read_tsv("1\t10\nword\tx\t0.5\n").is_err());
        assert!(WordVectors::read_tsv("1\t10\nw\t1\t0.5\nw\t1\t0.5\n").is_err());
        // NaN/∞ components would poison every downstream cosine.
        assert!(WordVectors::read_tsv("1\t10\nw\t1\tNaN\n").is_err());
        assert!(WordVectors::read_tsv("1\t10\nw\t1\tinf\n").is_err());
    }

    #[test]
    fn tsv_reports_every_defect() {
        let doc = "1\t10\nw\tx\t0.5\nv\t1\t0.5 0.5\nw\t1\tNaN\nu\t1\t0.5\nu\t1\t0.5\n";
        match WordVectors::read_tsv(doc) {
            Err(medkb_types::MedKbError::Validation(r)) => {
                // bad count, dim mismatch, non-finite, duplicate word.
                assert_eq!(r.len(), 4, "{r}");
            }
            other => panic!("expected validation error, got {other:?}"),
        }
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary text or bytes must error cleanly, never panic.
            #[test]
            fn prop_read_tsv_never_panics(
                doc in "[\\x20-\\x7e\\t\\n]{0,160}",
                bytes in proptest::collection::vec(any::<u8>(), 0..160),
            ) {
                let _ = WordVectors::read_tsv(&doc);
                let _ = WordVectors::read_tsv(&String::from_utf8_lossy(&bytes));
            }
        }
    }

    #[test]
    fn dim_and_vocab_accessors() {
        let corpus = topic_corpus();
        let wv = WordVectors::train(&corpus, &SgnsConfig::tiny(7));
        assert_eq!(wv.dim(), 24);
        assert_eq!(wv.vocab_size(), corpus.vocab.len());
        assert_eq!(wv.get("apple").unwrap().len(), 24);
    }
}
