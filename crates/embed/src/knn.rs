//! Brute-force cosine nearest-neighbour index over phrase embeddings.
//!
//! Used by the embedding mapper (Table 1) to resolve an instance or query
//! term to its nearest external concept name, and by the embedding
//! baselines (Table 2) to rank relaxation candidates. Vectors are
//! L2-normalized at insert so search is a dot-product scan — ample for the
//! tens of thousands of names a terminology carries.

/// A `(payload, score)` search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Caller-defined payload (e.g. an `ExtConceptId` raw value).
    pub payload: u32,
    /// Cosine similarity in `[-1, 1]`.
    pub score: f64,
}

/// Brute-force cosine index.
#[derive(Debug, Clone, Default)]
pub struct EmbeddingIndex {
    dim: usize,
    payloads: Vec<u32>,
    /// Normalized vectors, row-major.
    data: Vec<f32>,
}

impl EmbeddingIndex {
    /// An empty index of dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        Self { dim, payloads: Vec::new(), data: Vec::new() }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Insert `vector` with `payload`. Zero vectors are skipped (they can
    /// never win a cosine search) — returns whether the vector was stored.
    ///
    /// # Panics
    /// Panics if `vector.len()` differs from the index dimensionality.
    pub fn insert(&mut self, payload: u32, vector: &[f32]) -> bool {
        assert_eq!(vector.len(), self.dim, "dimensionality mismatch");
        let norm: f32 = vector.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm == 0.0 {
            return false;
        }
        self.payloads.push(payload);
        self.data.extend(vector.iter().map(|x| x / norm));
        true
    }

    /// The raw index arrays `(dim, payloads, normalized row-major data)`
    /// for persistence — building the index embeds every concept name, so
    /// medkb-store saves the finished arrays instead of re-embedding on
    /// open.
    pub fn to_raw(&self) -> (usize, &[u32], &[f32]) {
        (self.dim, &self.payloads, &self.data)
    }

    /// Reassemble an index from [`EmbeddingIndex::to_raw`] arrays. The
    /// vectors must already be L2-normalized (they are, coming out of
    /// `to_raw`); no renormalization happens here.
    pub fn from_raw(dim: usize, payloads: Vec<u32>, data: Vec<f32>) -> Self {
        debug_assert_eq!(payloads.len() * dim, data.len());
        Self { dim, payloads, data }
    }

    /// The `k` nearest payloads to `query` by cosine, best first.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "dimensionality mismatch");
        let qnorm: f32 = query.iter().map(|x| x * x).sum::<f32>().sqrt();
        if qnorm == 0.0 || k == 0 {
            return Vec::new();
        }
        let q: Vec<f32> = query.iter().map(|x| x / qnorm).collect();
        let mut hits: Vec<Hit> = self
            .payloads
            .iter()
            .enumerate()
            .map(|(i, &payload)| {
                let row = &self.data[i * self.dim..(i + 1) * self.dim];
                let score: f64 =
                    row.iter().zip(&q).map(|(&a, &b)| f64::from(a) * f64::from(b)).sum();
                Hit { payload, score }
            })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.payload.cmp(&b.payload)));
        hits.truncate(k);
        hits
    }

    /// The single best hit at or above `min_score`.
    pub fn nearest_above(&self, query: &[f32], min_score: f64) -> Option<Hit> {
        self.search(query, 1).into_iter().find(|h| h.score >= min_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> EmbeddingIndex {
        let mut idx = EmbeddingIndex::new(3);
        idx.insert(1, &[1.0, 0.0, 0.0]);
        idx.insert(2, &[0.0, 1.0, 0.0]);
        idx.insert(3, &[0.7, 0.7, 0.0]);
        idx
    }

    #[test]
    fn exact_direction_wins() {
        let idx = index();
        let hits = idx.search(&[2.0, 0.0, 0.0], 2);
        assert_eq!(hits[0].payload, 1);
        assert!((hits[0].score - 1.0).abs() < 1e-6);
        assert_eq!(hits[1].payload, 3);
    }

    #[test]
    fn k_truncates() {
        let idx = index();
        assert_eq!(idx.search(&[1.0, 1.0, 0.0], 1).len(), 1);
        assert_eq!(idx.search(&[1.0, 1.0, 0.0], 10).len(), 3);
        assert!(idx.search(&[1.0, 0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn zero_vectors_rejected() {
        let mut idx = EmbeddingIndex::new(2);
        assert!(!idx.insert(9, &[0.0, 0.0]));
        assert!(idx.is_empty());
        assert!(idx.search(&[0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn nearest_above_threshold() {
        let idx = index();
        assert_eq!(idx.nearest_above(&[1.0, 0.0, 0.0], 0.99).unwrap().payload, 1);
        assert!(idx.nearest_above(&[-1.0, 0.0, 0.0], 0.5).is_none());
    }

    #[test]
    fn ties_break_by_payload() {
        let mut idx = EmbeddingIndex::new(2);
        idx.insert(7, &[1.0, 0.0]);
        idx.insert(4, &[1.0, 0.0]);
        let hits = idx.search(&[1.0, 0.0], 2);
        assert_eq!(hits[0].payload, 4);
        assert_eq!(hits[1].payload, 7);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dimension_mismatch_panics() {
        let idx = index();
        let _ = idx.search(&[1.0, 0.0], 1);
    }
}
