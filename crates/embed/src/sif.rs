//! Smooth Inverse Frequency (SIF) phrase embeddings — the "simple but
//! tough-to-beat" sentence embedding of Arora et al. [3], which the paper
//! uses both to embed multi-word query terms and as the
//! `Embedding-trained` baseline.
//!
//! A phrase embeds as the `a / (a + p(w))`-weighted average of its word
//! vectors, minus its projection onto the corpus's first principal
//! component (computed here by power iteration over a sample of sentence
//! embeddings).

use medkb_corpus::Corpus;
use medkb_text::tokenize;

use crate::sgns::{WordVectorParts, WordVectors};

/// A fitted SIF model: word vectors + weighting + common component.
#[derive(Debug, Clone)]
pub struct SifModel {
    vectors: WordVectors,
    a: f64,
    pc: Vec<f32>,
}

/// Flat decomposition of [`SifModel`] for lossless persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct SifParts {
    /// The underlying word vectors.
    pub vectors: WordVectorParts,
    /// SIF smoothing parameter.
    pub a: f64,
    /// First principal component of the training sentence embeddings.
    pub pc: Vec<f32>,
}

impl SifParts {
    /// Bit-level equality (see [`WordVectorParts::bits_eq`]): NaN-sound
    /// and signed-zero-strict, unlike the derived `PartialEq`.
    pub fn bits_eq(&self, other: &Self) -> bool {
        self.vectors.bits_eq(&other.vectors)
            && self.a.to_bits() == other.a.to_bits()
            && crate::f32_bits_eq(&self.pc, &other.pc)
    }
}

impl SifModel {
    /// Fit over `corpus` with smoothing parameter `a` (the paper's
    /// recommended 1e-3 is the usual choice).
    pub fn fit(vectors: WordVectors, corpus: &Corpus, a: f64) -> Self {
        let dim = vectors.dim();
        // Weighted-average embeddings for a sample of sentences.
        let mut rows: Vec<Vec<f32>> = Vec::new();
        for sentence in corpus.sentences().take(4000) {
            let words: Vec<String> =
                sentence.tokens.iter().map(|&t| corpus.vocab.resolve(t).to_string()).collect();
            if let Some(v) = weighted_average(&vectors, a, words.iter().map(|s| s.as_str())) {
                rows.push(v);
            }
        }
        let pc = first_principal_component(&rows, dim, 30);
        Self { vectors, a, pc }
    }

    /// The underlying word vectors.
    pub fn vectors(&self) -> &WordVectors {
        &self.vectors
    }

    /// Embed a phrase. `None` when every token is out of vocabulary —
    /// the paper's diagnosis for the weak pre-trained baseline.
    pub fn embed(&self, phrase: &str) -> Option<Vec<f32>> {
        let words = tokenize(phrase);
        let mut v = weighted_average(&self.vectors, self.a, words.iter().map(|s| s.as_str()))?;
        remove_projection(&mut v, &self.pc);
        Some(v)
    }

    /// Fraction of the phrase's tokens that are in vocabulary.
    pub fn coverage(&self, phrase: &str) -> f64 {
        let words = tokenize(phrase);
        if words.is_empty() {
            return 0.0;
        }
        let known = words.iter().filter(|w| self.vectors.get(w).is_some()).count();
        known as f64 / words.len() as f64
    }

    /// Cosine similarity of two phrases (`None` if either is fully OOV).
    pub fn similarity(&self, a: &str, b: &str) -> Option<f64> {
        let (va, vb) = (self.embed(a)?, self.embed(b)?);
        Some(crate::sgns::cosine(&va, &vb))
    }

    /// Decompose into flat parts for lossless binary persistence
    /// (medkb-store). Unlike [`SifModel::write_tsv`] (rounded decimal),
    /// the parts preserve exact bit patterns; `from_parts(to_parts())`
    /// embeds phrases bit-identically to the original model.
    pub fn to_parts(&self) -> SifParts {
        SifParts { vectors: self.vectors.to_parts(), a: self.a, pc: self.pc.clone() }
    }

    /// Rebuild from [`SifModel::to_parts`] output.
    pub fn from_parts(parts: SifParts) -> Self {
        Self { vectors: WordVectors::from_parts(parts.vectors), a: parts.a, pc: parts.pc }
    }

    /// Serialize the fitted model: one header line `a <TAB> pc1 pc2 …`,
    /// then the underlying word vectors' TSV document.
    pub fn write_tsv(&self) -> String {
        let pc: Vec<String> = self.pc.iter().map(|x| format!("{x:.6e}")).collect();
        format!("{:.6e}\t{}\n{}", self.a, pc.join(" "), self.vectors.write_tsv())
    }

    /// Parse a document produced by [`SifModel::write_tsv`].
    ///
    /// # Errors
    /// [`medkb_types::MedKbError::Corrupt`] on malformed input.
    pub fn read_tsv(doc: &str) -> medkb_types::Result<Self> {
        use medkb_types::MedKbError;
        let corrupt = |what: &str| MedKbError::Corrupt {
            detail: format!("sif model: {what}"),
        };
        let (header, rest) = doc.split_once('\n').ok_or_else(|| corrupt("missing header"))?;
        let (a_raw, pc_raw) = header.split_once('\t').ok_or_else(|| corrupt("bad header"))?;
        let a: f64 = a_raw.parse().map_err(|_| corrupt("bad smoothing parameter"))?;
        let pc: Vec<f32> = pc_raw
            .split(' ')
            .filter(|x| !x.is_empty())
            .map(|x| x.parse::<f32>())
            .collect::<std::result::Result<_, _>>()
            .map_err(|_| corrupt("bad principal component"))?;
        let vectors = WordVectors::read_tsv(rest)?;
        if pc.len() != vectors.dim() {
            return Err(corrupt("principal component dimensionality mismatch"));
        }
        Ok(Self { vectors, a, pc })
    }
}

/// SIF-weighted average of the word vectors of `words`; `None` if all OOV.
fn weighted_average<'a>(
    vectors: &WordVectors,
    a: f64,
    words: impl Iterator<Item = &'a str>,
) -> Option<Vec<f32>> {
    let mut acc = vec![0.0f32; vectors.dim()];
    let mut n = 0usize;
    for w in words {
        let Some(v) = vectors.get(w) else { continue };
        let weight = (a / (a + vectors.probability(w))) as f32;
        for (x, &y) in acc.iter_mut().zip(v) {
            *x += weight * y;
        }
        n += 1;
    }
    if n == 0 {
        return None;
    }
    for x in acc.iter_mut() {
        *x /= n as f32;
    }
    Some(acc)
}

/// First principal component of `rows` via power iteration.
fn first_principal_component(rows: &[Vec<f32>], dim: usize, iterations: usize) -> Vec<f32> {
    if rows.is_empty() {
        return vec![0.0; dim];
    }
    // Center the rows.
    let mut mean = vec![0.0f64; dim];
    for r in rows {
        for (m, &x) in mean.iter_mut().zip(r) {
            *m += f64::from(x);
        }
    }
    for m in mean.iter_mut() {
        *m /= rows.len() as f64;
    }
    // Deterministic start vector.
    let mut v: Vec<f64> = (0..dim).map(|i| 1.0 + (i as f64) * 0.01).collect();
    normalize(&mut v);
    for _ in 0..iterations {
        // u = Σ_r ((r - mean)·v) (r - mean); avoids materializing X^T X.
        let mut u = vec![0.0f64; dim];
        for r in rows {
            let mut dot = 0.0f64;
            for ((x, m), y) in r.iter().zip(&mean).zip(&v) {
                dot += (f64::from(*x) - m) * y;
            }
            for ((ui, x), m) in u.iter_mut().zip(r).zip(&mean) {
                *ui += dot * (f64::from(*x) - m);
            }
        }
        if u.iter().all(|&x| x == 0.0) {
            break;
        }
        v = u;
        normalize(&mut v);
    }
    v.into_iter().map(|x| x as f32).collect()
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Remove the projection of `v` onto `pc` in place.
fn remove_projection(v: &mut [f32], pc: &[f32]) {
    let dot: f32 = v.iter().zip(pc).map(|(&a, &b)| a * b).sum();
    for (x, &p) in v.iter_mut().zip(pc) {
        *x -= dot * p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgns::SgnsConfig;
    use medkb_corpus::{Document, Sentence};
    use medkb_snomed::ContextTag;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        let sent = |text: &str, c: &mut Corpus| Sentence {
            tag: ContextTag::General,
            tokens: tokenize(text).into_iter().map(|t| c.vocab.intern(&t)).collect(),
        };
        let lines = [
            "the drug treats kidney pain quickly",
            "kidney pain responds to the drug",
            "severe kidney ache is kidney pain",
            "the drug treats liver swelling quickly",
            "liver swelling responds to the drug",
            "mild liver bloat is liver swelling",
        ];
        for _ in 0..40 {
            for l in lines {
                let s = sent(l, &mut c);
                c.docs.push(Document { sentences: vec![s] });
            }
        }
        c
    }

    fn model() -> SifModel {
        let c = corpus();
        let wv = WordVectors::train(&c, &SgnsConfig { subsample: 0.0, ..SgnsConfig::tiny(8) });
        SifModel::fit(wv, &c, 1e-3)
    }

    #[test]
    fn embeds_in_vocab_phrases() {
        let m = model();
        let v = m.embed("kidney pain").unwrap();
        assert_eq!(v.len(), 24);
        assert!(v.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn fully_oov_phrase_is_none() {
        let m = model();
        assert!(m.embed("zeppelin flight").is_none());
        assert_eq!(m.coverage("zeppelin flight"), 0.0);
        assert_eq!(m.coverage("kidney zeppelin"), 0.5);
    }

    #[test]
    fn word_order_invariance() {
        let m = model();
        let s = m.similarity("kidney pain", "pain kidney").unwrap();
        assert!(s > 0.999, "{s}");
    }

    #[test]
    fn related_phrases_beat_unrelated() {
        let m = model();
        let related = m.similarity("kidney pain", "kidney ache").unwrap();
        let unrelated = m.similarity("kidney pain", "liver swelling").unwrap();
        assert!(
            related > unrelated,
            "related {related:.3} vs unrelated {unrelated:.3}"
        );
    }

    #[test]
    fn empty_phrase_is_none() {
        let m = model();
        assert!(m.embed("").is_none());
        assert_eq!(m.coverage(""), 0.0);
    }

    #[test]
    fn tsv_roundtrip_preserves_embeddings() {
        let m = model();
        let back = SifModel::read_tsv(&m.write_tsv()).unwrap();
        let (a, b) = (m.embed("kidney pain").unwrap(), back.embed("kidney pain").unwrap());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        assert!(back.embed("zeppelin").is_none());
    }

    #[test]
    fn tsv_rejects_malformed_models() {
        assert!(SifModel::read_tsv("").is_err());
        assert!(SifModel::read_tsv("not-a-number\t0.1\n1\t10\n").is_err());
        // PC dimensionality mismatch against the embedded vectors.
        assert!(SifModel::read_tsv("1e-3\t0.5 0.5\n1\t10\nw\t1\t0.5\n").is_err());
    }

    #[test]
    fn parts_bits_eq_accepts_identical_nan_vectors() {
        let m = model();
        let mut parts = m.to_parts();
        parts.vectors.vecs[0] = f32::NAN;
        let twin = parts.clone();
        assert_ne!(parts, twin); // NaN defeats the derived PartialEq…
        assert!(parts.bits_eq(&twin)); // …but not the bit-level oracle.
        let mut other = parts.clone();
        other.pc[0] += 1.0;
        assert!(!parts.bits_eq(&other));
    }

    #[test]
    fn pc_is_unit_or_zero() {
        let m = model();
        let norm: f32 = m.pc.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-3 || norm == 0.0, "{norm}");
    }
}
