//! Word and phrase embedding substrate, implemented from scratch.
//!
//! The paper uses word embeddings [8, 30] and the SIF sentence embedding of
//! Arora et al. [3] in three places: as the third mapping method in
//! Table 1, as the `Embedding-trained` / `Embedding-pre-trained` baselines
//! in Table 2, and as the fallback lookup for query terms. Pre-trained
//! biomedical vectors [32] are download-gated, so *both* embedding flavours
//! here are trained by the same code — the "pre-trained" variant simply
//! trains on the out-of-domain corpus (see `medkb-corpus::gen`).
//!
//! * [`sgns`] — skip-gram with negative sampling over a corpus.
//! * [`sif`] — smooth inverse frequency phrase embeddings with first
//!   principal component removal (power iteration, also from scratch).
//! * [`knn`] — brute-force cosine nearest-neighbour index.

#![warn(missing_docs)]

pub mod knn;
pub mod sgns;
pub mod sif;

pub use knn::EmbeddingIndex;
pub use sgns::{SgnsConfig, WordVectorParts, WordVectors};
pub use sif::{SifModel, SifParts};

/// Bit-level equality of two `f32` slices: same length, same bit pattern
/// per element. Stricter than `==` on signed zeros (`0.0` vs `-0.0`
/// differ) and sound on NaN (a NaN equals the same NaN bits, where `==`
/// would say unequal) — the comparison the bit-identity oracles need.
pub fn f32_bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}
