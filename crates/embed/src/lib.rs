//! Word and phrase embedding substrate, implemented from scratch.
//!
//! The paper uses word embeddings [8, 30] and the SIF sentence embedding of
//! Arora et al. [3] in three places: as the third mapping method in
//! Table 1, as the `Embedding-trained` / `Embedding-pre-trained` baselines
//! in Table 2, and as the fallback lookup for query terms. Pre-trained
//! biomedical vectors [32] are download-gated, so *both* embedding flavours
//! here are trained by the same code — the "pre-trained" variant simply
//! trains on the out-of-domain corpus (see `medkb-corpus::gen`).
//!
//! * [`sgns`] — skip-gram with negative sampling over a corpus.
//! * [`sif`] — smooth inverse frequency phrase embeddings with first
//!   principal component removal (power iteration, also from scratch).
//! * [`knn`] — brute-force cosine nearest-neighbour index.

#![warn(missing_docs)]

pub mod knn;
pub mod sgns;
pub mod sif;

pub use knn::EmbeddingIndex;
pub use sgns::{SgnsConfig, WordVectorParts, WordVectors};
pub use sif::{SifModel, SifParts};
