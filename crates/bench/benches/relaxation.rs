//! Online query relaxation (Algorithm 2) latency benchmarks.
//!
//! §5.2 claims the online phase is `Θ(N log N)` in the number of flagged
//! concepts reached; the radius sweep shows how candidate volume drives
//! latency, and the shortcut on/off comparison quantifies the §5.1
//! customization's effect on retrieval.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use medkb_core::{ingest, MappingMethod, QueryRelaxer, RelaxConfig};
use medkb_corpus::{CorpusConfig, CorpusGenerator, MentionCounts};
use medkb_snomed::{Hierarchy, MedWorld, SnomedConfig, WorldConfig};
use medkb_types::ExtConceptId;

fn setup(shortcuts: bool) -> (QueryRelaxer, Vec<ExtConceptId>) {
    let config = WorldConfig {
        snomed: SnomedConfig { concepts: 4_000, seed: 52, ..SnomedConfig::default() },
        seed: 53,
        finding_instances: 900,
        drug_instances: 200,
        ..WorldConfig::default()
    };
    let world = MedWorld::generate(&config);
    let corpus = CorpusGenerator::new(&world.terminology, &world.oracle).generate(&CorpusConfig {
        seed: 54,
        docs: 250,
        ..CorpusConfig::default()
    });
    let counts = MentionCounts::count(&corpus, &world.terminology.ekg);
    let relax_config = RelaxConfig {
        mapping: MappingMethod::Exact,
        add_shortcuts: shortcuts,
        ..RelaxConfig::default()
    };
    let out = ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &relax_config)
        .expect("ingest");
    let queries: Vec<ExtConceptId> = world
        .terminology
        .of_hierarchy_below(Hierarchy::ClinicalFinding, 3)
        .into_iter()
        .filter(|c| out.flagged.contains(c))
        .take(32)
        .collect();
    (QueryRelaxer::new(out, relax_config), queries)
}

fn bench_radius_sweep(c: &mut Criterion) {
    let (relaxer, queries) = setup(true);
    let ctx = relaxer
        .ingested()
        .contexts
        .iter()
        .find(|s| s.label == "Indication-hasFinding-Finding")
        .unwrap()
        .id;
    let mut group = c.benchmark_group("relax_radius");
    for &radius in &[2u32, 4, 6] {
        let mut cfg = relaxer.config().clone();
        cfg.radius = radius;
        cfg.dynamic_radius = false;
        let fixed = QueryRelaxer::new(relaxer.ingested().clone(), cfg);
        group.bench_with_input(BenchmarkId::from_parameter(radius), &radius, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                fixed.relax_concept(q, Some(ctx), 10).expect("relax")
            })
        });
    }
    group.finish();
}

fn bench_shortcut_effect(c: &mut Criterion) {
    let mut group = c.benchmark_group("relax_shortcuts");
    group.sample_size(20);
    for (label, shortcuts) in [("with_shortcuts", true), ("without_shortcuts", false)] {
        let (relaxer, queries) = setup(shortcuts);
        let ctx = relaxer
            .ingested()
            .contexts
            .iter()
            .find(|s| s.label == "Indication-hasFinding-Finding")
            .unwrap()
            .id;
        group.bench_function(label, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                relaxer.relax_concept(q, Some(ctx), 10).expect("relax")
            })
        });
    }
    group.finish();
}

fn bench_scoring_only(c: &mut Criterion) {
    let (relaxer, queries) = setup(true);
    let q = queries[0];
    let candidates: Vec<ExtConceptId> = relaxer
        .ingested()
        .ekg
        .neighborhood(q, 6)
        .into_iter()
        .map(|(c, _)| c)
        .filter(|c| relaxer.ingested().flagged.contains(c))
        .collect();
    let ctx = relaxer.ingested().contexts.first().unwrap().id;
    c.bench_function("rank_candidates_eq5", |b| {
        b.iter(|| relaxer.rank_candidates(q, &candidates, Some(ctx)))
    });
}

criterion_group!(benches, bench_radius_sweep, bench_shortcut_effect, bench_scoring_only);
criterion_main!(benches);
