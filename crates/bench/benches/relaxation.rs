//! Online query relaxation (Algorithm 2) latency benchmarks.
//!
//! §5.2 claims the online phase is `Θ(N log N)` in the number of flagged
//! concepts reached; the radius sweep shows how candidate volume drives
//! latency, the shortcut on/off comparison quantifies the §5.1
//! customization's effect on retrieval, the reference-vs-scoped pair
//! isolates the query-scoped scoring engine's win, and the thread sweep
//! measures batch-relaxation scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use medkb_bench::{relaxation_bench_world, zipf_query_stream, RelaxBenchWorld};
use medkb_core::QueryRelaxer;
use medkb_types::ExtConceptId;

fn setup(shortcuts: bool) -> (QueryRelaxer, Vec<ExtConceptId>) {
    let RelaxBenchWorld { relaxer, queries, .. } = relaxation_bench_world(shortcuts);
    (relaxer, queries)
}

fn bench_radius_sweep(c: &mut Criterion) {
    let RelaxBenchWorld { relaxer, queries, context: ctx } = relaxation_bench_world(true);
    let mut group = c.benchmark_group("relax_radius");
    for &radius in &[2u32, 4, 6] {
        let mut cfg = relaxer.config().clone();
        cfg.radius = radius;
        cfg.dynamic_radius = false;
        let fixed = QueryRelaxer::new(relaxer.ingested().clone(), cfg);
        group.bench_with_input(BenchmarkId::from_parameter(radius), &radius, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                fixed.relax_concept(q, Some(ctx), 10).expect("relax")
            })
        });
    }
    group.finish();
}

fn bench_shortcut_effect(c: &mut Criterion) {
    let mut group = c.benchmark_group("relax_shortcuts");
    group.sample_size(20);
    for (label, shortcuts) in [("with_shortcuts", true), ("without_shortcuts", false)] {
        let RelaxBenchWorld { relaxer, queries, context: ctx } =
            relaxation_bench_world(shortcuts);
        group.bench_function(label, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = queries[i % queries.len()];
                i += 1;
                relaxer.relax_concept(q, Some(ctx), 10).expect("relax")
            })
        });
    }
    group.finish();
}

/// The optimized engine against the pre-optimization reference path at the
/// default radius — the direct before/after of the query-scoped scoring
/// engine (DESIGN.md §performance).
fn bench_reference_vs_scoped(c: &mut Criterion) {
    let RelaxBenchWorld { relaxer, queries, context: ctx } = relaxation_bench_world(true);
    let mut group = c.benchmark_group("relax_engine");
    group.sample_size(20);
    group.bench_function("reference", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            relaxer.relax_concept_reference(q, Some(ctx), 10).expect("relax")
        })
    });
    group.bench_function("query_scoped", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            relaxer.relax_concept(q, Some(ctx), 10).expect("relax")
        })
    });
    group.finish();
}

/// Batch-relaxation throughput over the 32-query workload as the shard
/// count grows.
fn bench_batch_threads(c: &mut Criterion) {
    let RelaxBenchWorld { relaxer, queries, context: ctx } = relaxation_bench_world(true);
    let batch: Vec<(ExtConceptId, Option<medkb_types::ContextId>)> =
        queries.iter().map(|&q| (q, Some(ctx))).collect();
    let mut group = c.benchmark_group("relax_batch");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| relaxer.relax_concepts_batch_with_threads(&batch, 10, t))
        });
    }
    group.finish();
}

/// Score-bounded pruning (DESIGN.md §13) against the exhaustive scan over a
/// Zipf-skewed query stream: radius 2/4/6 × k 1/10/100, bounded vs
/// exhaustive on the same ingested world. Both variants return bit-identical
/// answers; the delta is pure scan cost.
fn bench_pruned_vs_exhaustive(c: &mut Criterion) {
    let RelaxBenchWorld { relaxer, queries, context: ctx } = relaxation_bench_world(true);
    let stream = zipf_query_stream(&queries, 256, 1.1, 0xED87);
    let mut group = c.benchmark_group("relax_pruned");
    group.sample_size(10);
    for &radius in &[2u32, 4, 6] {
        for &k in &[1usize, 10, 100] {
            for (label, pruning) in [("bounded", true), ("exhaustive", false)] {
                let mut cfg = relaxer.config().clone();
                cfg.radius = radius;
                cfg.dynamic_radius = false;
                cfg.pruning = pruning;
                let fixed = QueryRelaxer::new(relaxer.ingested().clone(), cfg);
                group.bench_function(&format!("{label}/r{radius}_k{k}"), |b| {
                    let mut i = 0usize;
                    b.iter(|| {
                        let q = stream[i % stream.len()];
                        i += 1;
                        fixed.relax_concept(q, Some(ctx), k).expect("relax")
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_scoring_only(c: &mut Criterion) {
    let (relaxer, queries) = setup(true);
    let q = queries[0];
    let candidates: Vec<ExtConceptId> = relaxer
        .ingested()
        .ekg
        .neighborhood(q, 6)
        .into_iter()
        .map(|(c, _)| c)
        .filter(|c| relaxer.ingested().flagged.contains(c))
        .collect();
    let ctx = relaxer.ingested().contexts.first().unwrap().id;
    c.bench_function("rank_candidates_eq5", |b| {
        b.iter(|| relaxer.rank_candidates(q, &candidates, Some(ctx)))
    });
}

criterion_group!(
    benches,
    bench_radius_sweep,
    bench_shortcut_effect,
    bench_reference_vs_scoped,
    bench_batch_threads,
    bench_pruned_vs_exhaustive,
    bench_scoring_only
);
criterion_main!(benches);
