//! Adversarial-world fuzz smoke as a benchmark: how expensive is one
//! seeded world (generation alone, and generation + the full differential
//! oracle stack)? Tracks the fixed per-world cost that bounds how many
//! worlds the exhaustive sweep (`cargo test -p medkb-fuzz --test
//! differential`) can afford.

use criterion::{criterion_group, criterion_main, Criterion};

use medkb_fuzz::{check_world, AdversarialWorld};

/// One seed per DAG shape (the same set the `smoke` test pins), so the
/// measurement covers singleton through shortcut-lattice worlds.
const SHAPE_SEEDS: [u64; 5] = [0, 1, 2, 3, 4];

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzz_world_generate");
    group.bench_function("one_seed_per_shape", |b| {
        b.iter(|| {
            SHAPE_SEEDS.map(|seed| AdversarialWorld::generate(seed).ekg.len() as u64)
        })
    });
    group.finish();
}

fn bench_check(c: &mut Criterion) {
    let worlds: Vec<AdversarialWorld> =
        SHAPE_SEEDS.iter().map(|&s| AdversarialWorld::generate(s)).collect();
    let mut group = c.benchmark_group("fuzz_world_check");
    group.sample_size(10);
    group.bench_function("oracle_stack_per_shape", |b| {
        b.iter(|| {
            for w in &worlds {
                check_world(w);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generate, bench_check);
criterion_main!(benches);
