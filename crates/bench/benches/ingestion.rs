//! Offline ingestion (Algorithm 1) scaling benchmarks.
//!
//! §5.1 claims ingestion costs
//! `Θ(|R|) + Θ(|I|·lookup) + O(|V|+|E|) + O(|V|·avg contexts)`.
//! The size sweep over generated terminologies checks that the measured
//! growth is near-linear in |V|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use medkb_core::{ingest, FrequencyMode, Frequencies, MappingMethod, ParallelConfig, RelaxConfig};
use medkb_corpus::{CorpusConfig, CorpusGenerator, MentionCounts};
use medkb_snomed::{MedWorld, SnomedConfig, WorldConfig};

fn world_of_size(concepts: usize) -> (MedWorld, MentionCounts) {
    let config = WorldConfig {
        snomed: SnomedConfig { concepts, seed: 42, ..SnomedConfig::default() },
        seed: 43,
        finding_instances: concepts / 5,
        drug_instances: concepts / 20,
        ..WorldConfig::default()
    };
    let world = MedWorld::generate(&config);
    let corpus = CorpusGenerator::new(&world.terminology, &world.oracle).generate(&CorpusConfig {
        seed: 44,
        docs: 200,
        ..CorpusConfig::default()
    });
    let counts = MentionCounts::count(&corpus, &world.terminology.ekg);
    (world, counts)
}

fn bench_ingestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_algorithm1");
    group.sample_size(10);
    for &size in &[1_000usize, 3_000, 9_000] {
        let (world, counts) = world_of_size(size);
        let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &config)
                    .expect("ingest succeeds")
            })
        });
    }
    group.finish();
}

fn bench_ingest_parallel(c: &mut Criterion) {
    let (world, counts) = world_of_size(3_000);
    let mut group = c.benchmark_group("ingest_parallel");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        // Unclamped so the sharded code paths run at the requested width
        // even on hosts with fewer cores than the sweep's upper end.
        let config = RelaxConfig {
            mapping: MappingMethod::Exact,
            parallel: ParallelConfig { clamp_to_cores: false, ..ParallelConfig::with_threads(threads) },
            ..RelaxConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &config)
                    .expect("ingest succeeds")
            })
        });
    }
    group.finish();
}

fn bench_frequency_rollup(c: &mut Criterion) {
    let (world, counts) = world_of_size(3_000);
    let ekg = &world.terminology.ekg;
    let mut group = c.benchmark_group("frequency_rollup");
    group.bench_function("paper_recursive", |b| {
        b.iter(|| Frequencies::compute(ekg, &counts, FrequencyMode::PaperRecursive, true))
    });
    group.bench_function("descendant_set", |b| {
        b.iter(|| Frequencies::compute(ekg, &counts, FrequencyMode::DescendantSet, true))
    });
    group.finish();
}

fn bench_mention_counting(c: &mut Criterion) {
    let (world, _) = world_of_size(3_000);
    let corpus = CorpusGenerator::new(&world.terminology, &world.oracle).generate(&CorpusConfig {
        seed: 45,
        docs: 300,
        ..CorpusConfig::default()
    });
    c.bench_function("mention_counting_300_docs", |b| {
        b.iter(|| MentionCounts::count(&corpus, &world.terminology.ekg))
    });
}

criterion_group!(
    benches,
    bench_ingestion,
    bench_ingest_parallel,
    bench_frequency_rollup,
    bench_mention_counting
);
criterion_main!(benches);
