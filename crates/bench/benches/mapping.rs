//! Mapping-method throughput (the Table 1 matchers as an online cost).

use criterion::{criterion_group, criterion_main, Criterion};

use medkb_core::{ConceptMapper, MappingMethod};
use medkb_corpus::{CorpusConfig, CorpusGenerator};
use medkb_embed::{SgnsConfig, SifModel, WordVectors};
use medkb_snomed::{vocab, GeneratedTerminology, Oracle, SnomedConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn setup() -> (GeneratedTerminology, Arc<SifModel>, Vec<String>) {
    let term = GeneratedTerminology::generate(&SnomedConfig {
        concepts: 4_000,
        seed: 62,
        ..SnomedConfig::default()
    });
    let oracle = Oracle::derive(&term, 63);
    let corpus = CorpusGenerator::new(&term, &oracle).generate(&CorpusConfig {
        seed: 64,
        docs: 250,
        ..CorpusConfig::default()
    });
    let wv = WordVectors::train(&corpus, &SgnsConfig { epochs: 2, ..SgnsConfig::default() });
    let sif = Arc::new(SifModel::fit(wv, &corpus, 1e-3));
    // Query workload: typo'd versions of real concept names.
    let mut rng = StdRng::seed_from_u64(65);
    let queries: Vec<String> =
        term.ekg.concepts().take(256).map(|c| vocab::typo(&mut rng, term.ekg.name(c))).collect();
    (term, sif, queries)
}

fn bench_mappers(c: &mut Criterion) {
    let (term, sif, queries) = setup();
    let mut group = c.benchmark_group("mapping_lookup");
    let cases: [(&str, MappingMethod); 3] = [
        ("exact", MappingMethod::Exact),
        ("edit_tau2", MappingMethod::edit_tau2()),
        ("embedding", MappingMethod::embedding_default()),
    ];
    for (label, method) in cases {
        let sif_arg = matches!(method, MappingMethod::Embedding { .. }).then(|| sif.clone());
        let mapper = ConceptMapper::build(&term.ekg, method, sif_arg).expect("mapper builds");
        group.bench_function(label, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                mapper.map(&term.ekg, q)
            })
        });
    }
    group.finish();
}

fn bench_mapper_build(c: &mut Criterion) {
    let (term, sif, _) = setup();
    let mut group = c.benchmark_group("mapper_build");
    group.sample_size(10);
    group.bench_function("edit_tau2", |b| {
        b.iter(|| ConceptMapper::build(&term.ekg, MappingMethod::edit_tau2(), None).unwrap())
    });
    group.bench_function("embedding", |b| {
        b.iter(|| {
            ConceptMapper::build(&term.ekg, MappingMethod::embedding_default(), Some(sif.clone()))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mappers, bench_mapper_build);
criterion_main!(benches);
