//! Micro-benchmarks of the substrate layers the relaxation method sits on.

use criterion::{criterion_group, criterion_main, Criterion};

use medkb_ekg::lcs::lcs;
use medkb_ekg::ReachabilityIndex;
use medkb_snomed::{GeneratedTerminology, Hierarchy, SnomedConfig};
use medkb_text::{levenshtein, levenshtein_within, tokenize, Gazetteer, NgramIndex};

fn bench_edit_distance(c: &mut Criterion) {
    let a = "chronic progressive renal insufficiency";
    let b = "chronic progresive renal insufficiancy";
    let mut group = c.benchmark_group("edit_distance");
    group.bench_function("full", |bch| bch.iter(|| levenshtein(a, b)));
    group.bench_function("banded_tau2", |bch| bch.iter(|| levenshtein_within(a, b, 2)));
    group.bench_function("banded_reject", |bch| {
        bch.iter(|| levenshtein_within(a, "hypothermia of newborn", 2))
    });
    group.finish();
}

fn bench_ngram_index(c: &mut Criterion) {
    let term = GeneratedTerminology::generate(&SnomedConfig {
        concepts: 4_000,
        seed: 71,
        ..SnomedConfig::default()
    });
    let mut index = NgramIndex::new(3);
    for concept in term.ekg.concepts() {
        index.insert(term.ekg.name(concept));
    }
    c.bench_function("ngram_candidates_4k_names", |b| {
        b.iter(|| index.candidates("chronic renal infection", 2))
    });
}

fn bench_graph_ops(c: &mut Criterion) {
    let term = GeneratedTerminology::generate(&SnomedConfig {
        concepts: 4_000,
        seed: 72,
        ..SnomedConfig::default()
    });
    let findings = term.of_hierarchy_below(Hierarchy::ClinicalFinding, 3);
    let (a, b) = (findings[0], findings[findings.len() / 2]);
    let mut group = c.benchmark_group("graph_ops");
    group.bench_function("lcs", |bch| bch.iter(|| lcs(&term.ekg, a, b)));
    group.bench_function("neighborhood_r4", |bch| bch.iter(|| term.ekg.neighborhood(a, 4)));
    group.bench_function("upward_distances", |bch| bch.iter(|| term.ekg.upward_distances(a)));
    group.bench_function("descendants", |bch| {
        let head = term.of_hierarchy(Hierarchy::ClinicalFinding)[0];
        bch.iter(|| term.ekg.descendants(head))
    });
    group.finish();
}

fn bench_gazetteer(c: &mut Criterion) {
    let term = GeneratedTerminology::generate(&SnomedConfig {
        concepts: 2_000,
        seed: 73,
        ..SnomedConfig::default()
    });
    let mut g = Gazetteer::new();
    for (i, concept) in term.ekg.concepts().enumerate() {
        g.insert(term.ekg.name(concept), i as u32);
    }
    let utterance = "what drugs treat chronic renal inflammation and severe cardiac pain today";
    let tokens = tokenize(utterance);
    c.bench_function("gazetteer_scan", |b| b.iter(|| g.scan_tokens(&tokens)));
}

fn bench_reachability(c: &mut Criterion) {
    let term = GeneratedTerminology::generate(&SnomedConfig {
        concepts: 4_000,
        seed: 74,
        ..SnomedConfig::default()
    });
    let findings = term.of_hierarchy_below(Hierarchy::ClinicalFinding, 3);
    let (a, b) = (findings[0], findings[findings.len() / 2]);
    let anc = term.ekg.ancestors(b).into_iter().next().unwrap();
    let mut group = c.benchmark_group("reachability");
    group.sample_size(20);
    group.bench_function("build_index_4k", |bch| bch.iter(|| ReachabilityIndex::build(&term.ekg)));
    let idx = ReachabilityIndex::build(&term.ekg);
    group.bench_function("probe_indexed", |bch| {
        bch.iter(|| (idx.is_ancestor(anc, b), idx.is_ancestor(a, b)))
    });
    group.bench_function("probe_walking", |bch| {
        bch.iter(|| (term.ekg.is_ancestor(anc, b), term.ekg.is_ancestor(a, b)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_edit_distance,
    bench_ngram_index,
    bench_graph_ops,
    bench_gazetteer,
    bench_reachability
);
criterion_main!(benches);
