//! Regenerate **Table 2**: overall effectiveness (P@10 / R@10 / F1) of
//! QR, its ablations, the IC baseline, and the embedding baselines.
//!
//! ```text
//! cargo run --release -p medkb-bench --bin table2 [--quick]
//! ```

use medkb_eval::relax_eval::{build_workload, evaluate_relaxation_on};
use medkb_eval::{evaluate_relaxation, report::render_table2};
use medkb_snomed::oracle::DEFAULT_RELEVANCE_THRESHOLD;
use medkb_snomed::ContextTag;

fn main() {
    let stack = medkb_bench::stack_from_args();
    let n = if std::env::args().any(|a| a == "--quick") { 30 } else { 100 };
    let rows = evaluate_relaxation(&stack, n);
    println!("# Table 2: Overall effectiveness ({n}-query workload)\n");
    println!("{}", render_table2(&rows));
    println!("95% bootstrap confidence intervals:");
    for r in &rows {
        println!(
            "  {:<22} P@10 [{:.2}, {:.2}]  R@10 [{:.2}, {:.2}]",
            r.method, r.p_ci.0, r.p_ci.1, r.r_ci.0, r.r_ci.1
        );
    }
    println!(
        "\n(paper reference F1: QR 86.40, QR-no-context 81.15, QR-no-corpus 74.39, \
         IC 71.68, Embedding-pre-trained 62.99, Embedding-trained 75.40)"
    );

    // Per-context breakdown.
    let workload = build_workload(&stack, n);
    for tag in [ContextTag::Treatment, ContextTag::Risk] {
        let sub = workload.only_tag(tag);
        let rows = evaluate_relaxation_on(&stack, &sub, DEFAULT_RELEVANCE_THRESHOLD);
        println!("\n## {tag:?}-context queries only ({})\n", sub.queries.len());
        println!("{}", render_table2(&rows));
    }
    medkb_bench::print_metrics_section(&stack);
}
