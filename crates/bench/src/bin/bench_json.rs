//! Machine-readable relaxation benchmark: runs the Table 2 workload shape
//! (the 4k-concept world of `relaxation_bench_world`) at a fixed radius 4
//! through both the pre-optimization reference path and the query-scoped
//! engine, and writes `BENCH_relax.json` at the repo root.
//!
//! ```text
//! cargo run --release -p medkb-bench --bin bench_json
//! ```

use std::time::Instant;

use medkb_bench::{relaxation_bench_world, RelaxBenchWorld};
use medkb_core::QueryRelaxer;
use medkb_types::ExtConceptId;

/// Median of a sample set (averages the middle pair for even sizes).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Per-query relaxation times (µs) over `reps` passes of the workload.
fn time_queries(
    relaxer: &QueryRelaxer,
    queries: &[ExtConceptId],
    ctx: medkb_types::ContextId,
    k: usize,
    reps: usize,
    reference: bool,
) -> Vec<f64> {
    let mut samples = Vec::with_capacity(queries.len() * reps);
    for _ in 0..reps {
        for &q in queries {
            let t = Instant::now();
            let r = if reference {
                relaxer.relax_concept_reference(q, Some(ctx), k)
            } else {
                relaxer.relax_concept(q, Some(ctx), k)
            };
            let us = t.elapsed().as_secs_f64() * 1e6;
            r.expect("relaxation succeeds");
            samples.push(us);
        }
    }
    samples
}

fn main() {
    let radius = 4u32;
    let k = 10usize;
    let reps = if std::env::args().any(|a| a == "--quick") { 2 } else { 5 };

    eprintln!("[bench_json] building 4k-concept benchmark world…");
    let RelaxBenchWorld { relaxer, queries, context } = relaxation_bench_world(true);
    let mut cfg = relaxer.config().clone();
    cfg.radius = radius;
    cfg.dynamic_radius = false;
    let relaxer = QueryRelaxer::new(relaxer.ingested().clone(), cfg);

    let candidates: Vec<usize> = queries
        .iter()
        .map(|&q| {
            relaxer
                .ingested()
                .ekg
                .neighborhood(q, radius)
                .into_iter()
                .filter(|(c, _)| *c != q && relaxer.ingested().flagged.contains(c))
                .count()
        })
        .collect();
    let candidates_mean =
        candidates.iter().sum::<usize>() as f64 / candidates.len().max(1) as f64;

    // Warm up both paths once, then interleave full measurement passes.
    time_queries(&relaxer, &queries, context, k, 1, true);
    time_queries(&relaxer, &queries, context, k, 1, false);
    let mut reference_us = time_queries(&relaxer, &queries, context, k, reps, true);
    let mut scoped_us = time_queries(&relaxer, &queries, context, k, reps, false);

    let t_batch = Instant::now();
    let batch: Vec<(ExtConceptId, Option<medkb_types::ContextId>)> =
        queries.iter().map(|&q| (q, Some(context))).collect();
    for _ in 0..reps {
        for res in relaxer.relax_concepts_batch(&batch, k) {
            res.expect("batch relaxation succeeds");
        }
    }
    let batch_us_per_query =
        t_batch.elapsed().as_secs_f64() * 1e6 / (queries.len() * reps) as f64;

    let reference_median = median(&mut reference_us);
    let scoped_median = median(&mut scoped_us);
    let speedup = reference_median / scoped_median;

    let json = format!(
        "{{\n  \"median_us_per_query\": {scoped_median:.2},\n  \
         \"reference_median_us_per_query\": {reference_median:.2},\n  \
         \"speedup_vs_reference\": {speedup:.2},\n  \
         \"batch_us_per_query\": {batch_us_per_query:.2},\n  \
         \"queries\": {},\n  \"reps\": {reps},\n  \
         \"candidates_mean\": {candidates_mean:.2},\n  \
         \"radius\": {radius},\n  \"k\": {k},\n  \
         \"world_concepts\": 4000\n}}\n",
        queries.len()
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_relax.json");
    std::fs::write(out, &json).expect("write BENCH_relax.json");
    eprintln!("[bench_json] wrote {out}");
    println!("{json}");
}
