//! Machine-readable benchmarks over the 4k-concept world.
//!
//! Default mode runs the Table 2 relaxation workload at a fixed radius 4
//! through both the pre-optimization reference path and the query-scoped
//! engine, and writes `BENCH_relax.json` at the repo root:
//!
//! ```text
//! cargo run --release -p medkb-bench --bin bench_json
//! ```
//!
//! `--ingest` instead times the offline pipeline (Algorithm 1): the
//! preserved sequential reference (`ingest_reference` + sequential mention
//! counting) against the optimized staged pipeline at 1/2/4/8 threads, and
//! writes `BENCH_ingest.json` with a per-stage breakdown:
//!
//! ```text
//! cargo run --release -p medkb-bench --bin bench_json -- --ingest
//! ```
//!
//! `--serve` times the serving layer (snapshot store + sharded result
//! cache) over the same 4k world: cold relax vs warm cache hit, plus a
//! snapshot-swap exercise, and writes `BENCH_serve.json`:
//!
//! ```text
//! cargo run --release -p medkb-bench --bin bench_json -- --serve
//! ```
//!
//! `--store` times the persistent world store (medkb-store) against a full
//! re-ingest of the same world: one save, repeated cold opens, and the
//! checksum-corruption rejection path, and writes `BENCH_store.json`:
//!
//! ```text
//! cargo run --release -p medkb-bench --bin bench_json -- --store
//! ```
//!
//! `--delta` times incremental delta ingestion (ROADMAP item 3) against
//! the full re-ingest it replaces: document deltas of size 1/10/100/1000
//! applied through `DeltaEngine::apply`, the delta-vs-full bit-identity
//! re-checked in-run, plus the zipf-stream cache-invalidation cost of a
//! delta publish, and writes `BENCH_delta.json`:
//!
//! ```text
//! cargo run --release -p medkb-bench --bin bench_json -- --delta
//! ```
//!
//! `--http` benchmarks the std-only HTTP/1.1 front end over real sockets:
//! a multi-connection load generator drives the zipf query stream through
//! keep-alive connections, asserts wire answers bit-identical to
//! in-process `serve_concepts_batch`, coalescing active, and the token
//! bucket rejecting a greedy client, and writes `BENCH_http.json` with
//! sustained QPS + p50/p99/p999 wire latency:
//!
//! ```text
//! cargo run --release -p medkb-bench --bin bench_json -- --http
//! ```
//!
//! `--world-scale N` sets the generated world's concept count in every mode
//! (default 4000 — the tier-1 fast path). Full-scale runs use
//! `--world-scale 350000`, SNOMED CT's concept count (ROADMAP item 1).
//!
//! `--quick` reduces repetitions and skips the file write in all modes
//! (so a smoke run cannot clobber committed full-run numbers).
//!
//! Both modes also run an instrumented pass against a fresh
//! `medkb_obs::Registry` and embed its snapshot under `"metrics"` in the
//! JSON output, asserting along the way that the snapshot parses as JSON
//! and contains every registered stage timer / engine counter — the tier-1
//! smoke contract (scripts/tier1.sh).

use std::sync::Arc;
use std::time::Instant;

use medkb_bench::{
    scaled_relaxation_bench_world, scaled_world_and_corpus, world_scale_from_args,
    RelaxBenchWorld,
};
use medkb_core::{
    ingest_reference, ingest_with_stats, IngestStats, ObsConfig, ParallelConfig, QueryRelaxer,
    RelaxConfig,
};
use medkb_corpus::MentionCounts;
use medkb_obs::{validate_json, Registry};
use medkb_types::ExtConceptId;

/// Median of a sample set (averages the middle pair for even sizes).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Nearest-rank percentile (`p` in 0..=100) of a sample set.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    if samples.is_empty() {
        return 0.0;
    }
    let idx = ((samples.len() as f64 - 1.0) * p / 100.0).round() as usize;
    samples[idx.min(samples.len() - 1)]
}

/// Per-query relaxation times (µs) over `reps` passes of the workload.
fn time_queries(
    relaxer: &QueryRelaxer,
    queries: &[ExtConceptId],
    ctx: medkb_types::ContextId,
    k: usize,
    reps: usize,
    reference: bool,
) -> Vec<f64> {
    let mut samples = Vec::with_capacity(queries.len() * reps);
    for _ in 0..reps {
        for &q in queries {
            let t = Instant::now();
            let r = if reference {
                relaxer.relax_concept_reference(q, Some(ctx), k)
            } else {
                relaxer.relax_concept(q, Some(ctx), k)
            };
            let us = t.elapsed().as_secs_f64() * 1e6;
            r.expect("relaxation succeeds");
            samples.push(us);
        }
    }
    samples
}

/// End-to-end ingestion benchmark (`--ingest`): sequential reference vs the
/// staged parallel pipeline at 1/2/4/8 threads, with the bit-identity pin
/// re-checked on every configuration.
fn run_ingest_bench(quick: bool, scale: usize) {
    let reps = if quick {
        2
    } else if scale > 100_000 {
        3
    } else {
        5
    };
    eprintln!("[bench_json] building {scale}-concept ingestion inputs…");
    let t_build = Instant::now();
    let (world, corpus) = scaled_world_and_corpus(scale);
    eprintln!("[bench_json] world + corpus built in {:.1}s", t_build.elapsed().as_secs_f64());
    let ekg = &world.terminology.ekg;
    let base = RelaxConfig {
        mapping: medkb_core::MappingMethod::Exact,
        ..RelaxConfig::default()
    };

    // Reference: sequential mention counting + the preserved v1 path.
    let mut reference_s = Vec::with_capacity(reps);
    let mut reference_out = None;
    for _ in 0..reps {
        // The input graph is moved into the pipeline; cloning it here is
        // bench scaffolding, not part of Algorithm 1 — keep it untimed.
        let ekg_in = ekg.clone();
        let t = Instant::now();
        let counts = MentionCounts::count_reference(&corpus, ekg);
        let out = ingest_reference(&world.kb, ekg_in, &counts, None, &base)
            .expect("reference ingest");
        reference_s.push(t.elapsed().as_secs_f64());
        reference_out = Some(out);
    }
    let reference = reference_out.expect("at least one rep");
    let reference_median = median(&mut reference_s);
    eprintln!("[bench_json] reference end-to-end: {reference_median:.3}s");

    // Two sweeps: the default configuration (workers clamped to the host's
    // cores — requesting 4 threads on a 1-core box otherwise just buys
    // scheduler overhead), and an unclamped sweep that measures that
    // oversubscription cost honestly. Both are pinned bit-identical to the
    // reference, which is the point: shard count never changes outputs.
    let sweep = |label: &str, clamp: bool, sweep_threads: &[usize]| -> String {
        let mut rows = String::new();
        for &threads in sweep_threads {
            let parallel = ParallelConfig { clamp_to_cores: clamp, ..ParallelConfig::with_threads(threads) };
            let effective = parallel.effective_threads();
            let cfg = RelaxConfig { parallel, ..base.clone() };
            let mut totals = Vec::with_capacity(reps);
            let mut counts_s = Vec::with_capacity(reps);
            let mut last: Option<(medkb_core::IngestOutput, IngestStats)> = None;
            for _ in 0..reps {
                let ekg_in = ekg.clone();
                let t = Instant::now();
                let counts = MentionCounts::count_with_threads(&corpus, ekg, effective);
                counts_s.push(t.elapsed().as_secs_f64());
                let pair = ingest_with_stats(&world.kb, ekg_in, &counts, None, &cfg)
                    .expect("staged ingest");
                totals.push(t.elapsed().as_secs_f64());
                last = Some(pair);
            }
            let (out, stats) = last.expect("at least one rep");
            // The speedup claim is only meaningful if the optimized pipeline
            // reproduces the reference bit for bit.
            assert_eq!(out.mappings, reference.mappings, "mappings diverged");
            assert_eq!(out.flagged, reference.flagged, "flagged set diverged");
            assert_eq!(out.shortcuts_added, reference.shortcuts_added, "shortcut count diverged");
            assert_eq!(out.freqs, reference.freqs, "frequency tables diverged");
            let total_median = median(&mut totals);
            let speedup = reference_median / total_median;
            eprintln!(
                "[bench_json] {label} threads={threads} (effective {effective}): \
                 {total_median:.3}s ({speedup:.2}x vs reference)"
            );
            if !rows.is_empty() {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"threads\": {threads}, \"threads_effective\": {effective}, \
                 \"end_to_end_s\": {total_median:.4}, \
                 \"speedup_vs_reference\": {speedup:.2}, \
                 \"counts_s\": {:.4}, \"stages\": {{\
                 \"contexts_s\": {:.4}, \"mapping_s\": {:.4}, \"reach_s\": {:.4}, \
                 \"freqs_s\": {:.4}, \"shortcuts_s\": {:.4}}}}}",
                median(&mut counts_s),
                stats.contexts_s,
                stats.mapping_s,
                stats.reach_s,
                stats.freqs_s,
                stats.shortcuts_s,
            ));
        }
        rows
    };
    let clamped_rows = sweep("clamped", true, &[1, 2, 4, 8]);
    let oversubscribed_rows = sweep("unclamped", false, &[2, 4, 8]);

    // Smoke contract: an instrumented run must register every ingestion
    // stage timer plus the counting stage, still reproduce the reference
    // bit for bit, and snapshot to valid JSON.
    let registry = Registry::shared();
    let cfg_obs =
        RelaxConfig { obs: ObsConfig::with_registry(Arc::clone(&registry)), ..base.clone() };
    let counts =
        MentionCounts::count_with_threads_obs(&corpus, ekg, 1, Some(&registry));
    let (out, _) = ingest_with_stats(&world.kb, ekg.clone(), &counts, None, &cfg_obs)
        .expect("instrumented ingest");
    assert_eq!(out.mappings, reference.mappings, "instrumented mappings diverged");
    assert_eq!(out.freqs, reference.freqs, "instrumented frequency tables diverged");
    let snap = registry.snapshot();
    for &timer in medkb_core::ingest::obs_names::STAGE_TIMERS {
        assert_eq!(snap.histogram_count(timer), 1, "stage timer missing: {timer}");
    }
    assert_eq!(snap.histogram_count(medkb_corpus::counts::obs_names::COUNT_US), 1);
    let metrics_json = snap.to_json();
    assert!(validate_json(&metrics_json), "metrics snapshot must be valid JSON");
    eprintln!("[bench_json] metrics snapshot OK ({} stage timers)", snap.histograms.len());

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let json = format!(
        "{{\n  \"reference_end_to_end_s\": {reference_median:.4},\n  \
         \"threads\": [\n{clamped_rows}\n  ],\n  \
         \"oversubscribed\": [\n{oversubscribed_rows}\n  ],\n  \
         \"reps\": {reps},\n  \"world_concepts\": {scale},\n  \
         \"ekg_concepts\": {},\n  \
         \"instances\": {},\n  \"docs\": {},\n  \
         \"machine_cores\": {cores},\n  \
         \"metrics\": {metrics_json}\n}}\n",
        world.terminology.ekg.len(),
        world.kb.instance_count(),
        corpus.len(),
    );
    if quick {
        eprintln!("[bench_json] --quick: skipping BENCH_ingest.json write");
    } else {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
        std::fs::write(out, &json).expect("write BENCH_ingest.json");
        eprintln!("[bench_json] wrote {out}");
    }
    println!("{json}");
}

/// Serving-layer benchmark (`--serve`): cold relax through the cache vs
/// warm hits, single-flight/batch traffic, and a snapshot swap under the
/// smoke contract that cached ≡ uncached bit for bit throughout.
fn run_serve_bench(quick: bool, scale: usize) {
    use medkb_serve::{obs_names as sn, RelaxServer, ServeConfig, ServedFrom};

    let radius = 4u32;
    let k = 10usize;
    let reps = if quick { 2 } else { 5 };

    eprintln!("[bench_json] building {scale}-concept benchmark world…");
    let t_build = Instant::now();
    let RelaxBenchWorld { relaxer, queries, context } = scaled_relaxation_bench_world(scale, true);
    eprintln!("[bench_json] world built + ingested in {:.1}s", t_build.elapsed().as_secs_f64());
    let mut cfg = relaxer.config().clone();
    cfg.radius = radius;
    cfg.dynamic_radius = false;
    // The uncached twin every served answer is checked against.
    let plain = QueryRelaxer::new(relaxer.ingested().clone(), cfg.clone());

    let registry = Registry::shared();
    let cfg_obs = RelaxConfig { obs: ObsConfig::with_registry(Arc::clone(&registry)), ..cfg };
    let server =
        RelaxServer::new(relaxer.ingested().clone(), cfg_obs, ServeConfig::default());

    let expected: Vec<_> = queries
        .iter()
        .map(|&q| plain.relax_concept(q, Some(context), k).expect("uncached relax"))
        .collect();

    // Cold pass: every key missing, every request computes.
    let mut cold_us = Vec::with_capacity(queries.len());
    for (&q, want) in queries.iter().zip(&expected) {
        let t = Instant::now();
        let served = server.serve_concept(q, Some(context), k).expect("cold serve");
        cold_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(served.served_from, ServedFrom::Computed, "cold pass must compute");
        assert_eq!(*served.result, *want, "cached path diverged from uncached relax");
    }

    // Warm passes: every key resident, every request hits.
    let mut warm_us = Vec::with_capacity(queries.len() * reps);
    for _ in 0..reps {
        for (&q, want) in queries.iter().zip(&expected) {
            let t = Instant::now();
            let served = server.serve_concept(q, Some(context), k).expect("warm serve");
            warm_us.push(t.elapsed().as_secs_f64() * 1e6);
            assert_eq!(served.served_from, ServedFrom::Cache, "warm pass must hit");
            assert_eq!(*served.result, *want, "warm hit diverged from uncached relax");
        }
    }

    // Batch surface: duplicated queries drain from the cache, order kept.
    let batch: Vec<(ExtConceptId, Option<medkb_types::ContextId>)> = queries
        .iter()
        .chain(queries.iter())
        .map(|&q| (q, Some(context)))
        .collect();
    for (res, want) in
        server.serve_concepts_batch(&batch, k).into_iter().zip(expected.iter().cycle())
    {
        let served = res.expect("batch serve");
        assert!(served.cached(), "warm batch must be served from cache");
        assert_eq!(*served.result, *want, "batch serving diverged");
    }

    // Snapshot swap: publish the same artifacts as epoch 1. New epoch means
    // new keys — the next pass recomputes, then warms again.
    let t = Instant::now();
    let epoch = server.publish(relaxer.ingested().clone());
    let publish_us = t.elapsed().as_secs_f64() * 1e6;
    assert_eq!(epoch, 1);
    let mut post_swap_cold_us = Vec::with_capacity(queries.len());
    for (&q, want) in queries.iter().zip(&expected) {
        let t = Instant::now();
        let served = server.serve_concept(q, Some(context), k).expect("post-swap serve");
        post_swap_cold_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(served.epoch, 1, "post-swap requests must see the new epoch");
        assert_eq!(served.served_from, ServedFrom::Computed, "swap must invalidate");
        assert_eq!(*served.result, *want, "post-swap answers diverged");
    }
    let rewarmed = server.serve_concept(queries[0], Some(context), k).expect("rewarm");
    assert_eq!(rewarmed.served_from, ServedFrom::Cache);

    // Shed semantics, on a separate registry so the traffic counters above
    // stay interpretable: a zero deadline sheds with Overloaded, not
    // NotFound, and records it.
    let shed_registry = Registry::shared();
    let shed_cfg = RelaxConfig {
        obs: ObsConfig::with_registry(Arc::clone(&shed_registry)),
        ..plain.config().clone()
    };
    let shed_server = RelaxServer::new(
        relaxer.ingested().clone(),
        shed_cfg,
        ServeConfig { deadline: Some(std::time::Duration::ZERO), ..ServeConfig::default() },
    );
    match shed_server.serve_concept(queries[0], Some(context), k) {
        Err(medkb_types::MedKbError::Overloaded { .. }) => {}
        other => panic!("zero deadline must shed with Overloaded, got {other:?}"),
    }
    assert_eq!(shed_registry.snapshot().counter(sn::SHED), 1, "shed counter must record");

    // Workload honesty (ISSUE 9): the headline hit ratio below comes from
    // uniform repeated sweeps over 32 queries against an 8192-entry cache —
    // after the first sweep literally everything hits, which says nothing
    // about a real query distribution. Re-measure both a uniform and a
    // zipf(1.07) stream against a deliberately small cache (one shard,
    // capacity 16 < 32 distinct queries) so evictions and the reuse skew
    // actually show up: the uniform round-robin thrashes the LRU while the
    // zipf head stays resident.
    let stream_len = if quick { 512 } else { 4096 };
    let small = ServeConfig { shards: 1, shard_capacity: 16, ..ServeConfig::default() };
    let workload = |label: &str, exponent: f64, stream: &[ExtConceptId]| -> (String, f64) {
        let reg = Registry::shared();
        let wcfg = RelaxConfig {
            obs: ObsConfig::with_registry(Arc::clone(&reg)),
            ..plain.config().clone()
        };
        let wserver = RelaxServer::new(relaxer.ingested().clone(), wcfg, small);
        let mut us = Vec::with_capacity(stream.len());
        for &q in stream {
            let t = Instant::now();
            let served = wserver.serve_concept(q, Some(context), k).expect("workload serve");
            us.push(t.elapsed().as_secs_f64() * 1e6);
            let pos = queries.iter().position(|&e| e == q).expect("stream query");
            assert_eq!(*served.result, expected[pos], "workload answer diverged");
        }
        let wsnap = reg.snapshot();
        let hits = wsnap.counter(sn::CACHE_HITS);
        let misses = wsnap.counter(sn::CACHE_MISSES);
        let evictions = wsnap.counter(sn::CACHE_EVICTIONS);
        let shed = wsnap.counter(sn::SHED);
        let ratio = wsnap.counter_ratio(sn::CACHE_HITS, sn::CACHE_MISSES);
        let distinct: std::collections::HashSet<ExtConceptId> = stream.iter().copied().collect();
        let p50 = median(&mut us);
        eprintln!(
            "[bench_json] {label} workload: hit ratio {ratio:.3}, {evictions} evictions, \
             {shed} shed, p50 {p50:.2}µs over {} requests ({} distinct)",
            stream.len(),
            distinct.len()
        );
        (
            format!(
                "{{\"workload\": \"{label}\", \"exponent\": {exponent}, \
                 \"stream_len\": {}, \"distinct_queries\": {}, \
                 \"cache_capacity\": {}, \"hit_ratio\": {ratio:.4}, \
                 \"evictions\": {evictions}, \"shed\": {shed}, \
                 \"hits\": {hits}, \"misses\": {misses}, \"p50_us\": {p50:.2}}}",
                stream.len(),
                distinct.len(),
                small.shards * small.shard_capacity,
            ),
            ratio,
        )
    };
    let uniform_stream: Vec<ExtConceptId> =
        (0..stream_len).map(|i| queries[i % queries.len()]).collect();
    let zipf_stream = medkb_bench::zipf_query_stream(&queries, stream_len, 1.07, 0x9E37);
    let (uniform_row, uniform_ratio) = workload("uniform", 0.0, &uniform_stream);
    let (zipf_row, zipf_ratio) = workload("zipf", 1.07, &zipf_stream);
    assert!(
        zipf_ratio > uniform_ratio,
        "a skewed stream must beat uniform round-robin on a small cache \
         (zipf {zipf_ratio:.3} vs uniform {uniform_ratio:.3})"
    );

    // Smoke contract over the instrumented traffic.
    let snap = registry.snapshot();
    let metrics_json = snap.to_json();
    assert!(validate_json(&metrics_json), "metrics snapshot must be valid JSON");
    let hits = snap.counter(sn::CACHE_HITS);
    let misses = snap.counter(sn::CACHE_MISSES);
    assert!(hits > 0, "warm passes must produce cache hits");
    // Exactly two cold sweeps (one per epoch) computed; everything else hit.
    assert_eq!(misses, 2 * queries.len() as u64, "unexpected miss count");
    assert_eq!(snap.counter(sn::SHED), 0, "unshedded traffic must not record sheds");
    assert_eq!(snap.counter(sn::SNAPSHOT_SWAPS), 1);
    assert_eq!(snap.counter(sn::SNAPSHOT_RETIRED), 1, "epoch 0 must retire after the swap");
    assert!(snap.histogram_count(sn::CACHE_LOOKUP_US) > 0, "lookup histogram empty");
    assert!(snap.histogram_count(sn::LATENCY_US) > 0, "latency histogram empty");
    let hit_ratio = snap.counter_ratio(sn::CACHE_HITS, sn::CACHE_MISSES);

    let cold_p50 = median(&mut cold_us);
    let warm_p50 = median(&mut warm_us);
    let post_swap_p50 = median(&mut post_swap_cold_us);
    let warm_speedup = cold_p50 / warm_p50;
    eprintln!(
        "[bench_json] cold {cold_p50:.1}µs, warm {warm_p50:.2}µs ({warm_speedup:.0}x), \
         post-swap {post_swap_p50:.1}µs, publish {publish_us:.0}µs, hit ratio {hit_ratio:.3}"
    );
    if !quick {
        // Acceptance criterion (ISSUE 5): warm-cache p50 ≥ 10× lower than
        // cold relax on the 4k world. Only enforced on full runs — --quick
        // is a smoke test and stays robust on loaded CI boxes.
        assert!(
            warm_p50 * 10.0 <= cold_p50,
            "warm p50 {warm_p50:.2}µs not ≥10x below cold p50 {cold_p50:.2}µs"
        );
    }

    let json = format!(
        "{{\n  \"cold_p50_us\": {cold_p50:.2},\n  \
         \"warm_p50_us\": {warm_p50:.2},\n  \
         \"warm_speedup\": {warm_speedup:.1},\n  \
         \"post_swap_cold_p50_us\": {post_swap_p50:.2},\n  \
         \"publish_us\": {publish_us:.1},\n  \
         \"uniform_loop_hit_ratio\": {hit_ratio:.4},\n  \
         \"cache_hits\": {hits},\n  \"cache_misses\": {misses},\n  \
         \"workloads\": [\n    {uniform_row},\n    {zipf_row}\n  ],\n  \
         \"queries\": {},\n  \"reps\": {reps},\n  \
         \"radius\": {radius},\n  \"k\": {k},\n  \
         \"shards\": {},\n  \"shard_capacity\": {},\n  \
         \"world_concepts\": {scale},\n  \
         \"metrics\": {metrics_json}\n}}\n",
        queries.len(),
        server.config().shards,
        server.config().shard_capacity,
    );
    if quick {
        eprintln!("[bench_json] --quick: skipping BENCH_serve.json write");
    } else {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        std::fs::write(out, &json).expect("write BENCH_serve.json");
        eprintln!("[bench_json] wrote {out}");
    }
    println!("{json}");
}

/// Minimal blocking HTTP client for the load generator: send one request
/// on an existing keep-alive stream, read one Content-Length-framed
/// response, return `(status, body)`.
fn http_roundtrip(
    stream: &mut std::net::TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String) {
    use std::io::{Read, Write};
    let mut req = format!("{method} {path} HTTP/1.1\r\n");
    for (n, v) in headers {
        req.push_str(&format!("{n}: {v}\r\n"));
    }
    req.push_str(&format!("content-length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(req.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "server closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end]).expect("header UTF-8");
    let status: u16 = head.split(' ').nth(1).and_then(|s| s.parse().ok()).expect("status");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(String::from))
        .and_then(|v| v.trim().parse().ok())
        .expect("content-length");
    while buf.len() < header_end + content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "server closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    (status, String::from_utf8(buf[header_end..header_end + content_length].to_vec()).unwrap())
}

/// HTTP front-end benchmark (`--http`): a multi-connection load generator
/// drives the zipf query stream over real sockets against the std-only
/// HTTP/1.1 server (ROADMAP item 2), recording sustained QPS and
/// p50/p99/p999 wire latency into `BENCH_http.json`. Along the way it
/// asserts the acceptance criteria in-run: over-the-wire answers
/// bit-identical to in-process `serve_concepts_batch` at the same epoch,
/// cross-connection coalescing measurably active, and a greedy client
/// rate-limited while a polite one is untouched.
fn run_http_bench(quick: bool, scale: usize) {
    use medkb_serve::http::{
        obs_names as hn, render_relaxation, CoalesceConfig, HttpConfig, RateLimitConfig,
    };
    use medkb_serve::{HttpServer, RelaxServer, ServeConfig};
    use std::net::TcpStream;
    use std::time::Duration;

    let radius = 4u32;
    let k = 10usize;
    let connections = 8usize;
    let total_requests = if quick { 400 } else { 8000 };

    eprintln!("[bench_json] building {scale}-concept benchmark world…");
    let t_build = Instant::now();
    let RelaxBenchWorld { relaxer, queries, context } = scaled_relaxation_bench_world(scale, true);
    eprintln!("[bench_json] world built + ingested in {:.1}s", t_build.elapsed().as_secs_f64());
    let mut cfg = relaxer.config().clone();
    cfg.radius = radius;
    cfg.dynamic_radius = false;

    let registry = Registry::shared();
    let cfg_obs = RelaxConfig { obs: ObsConfig::with_registry(Arc::clone(&registry)), ..cfg };
    let server = Arc::new(RelaxServer::new(
        relaxer.ingested().clone(),
        cfg_obs,
        ServeConfig::default(),
    ));
    let http = HttpServer::start(
        Arc::clone(&server),
        Some(Arc::clone(&registry)),
        HttpConfig {
            coalesce: Some(CoalesceConfig {
                window: Duration::from_millis(1),
                max_batch: 64,
            }),
            ..HttpConfig::default()
        },
    )
    .expect("bind http server");
    let addr = http.addr();
    let connect = || {
        let s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s
    };

    // Wire bit-identity (acceptance criterion): the same query set through
    // in-process `serve_concepts_batch` and over the wire, same epoch,
    // compared through the shared renderer — scores byte for byte.
    let batch: Vec<(ExtConceptId, Option<medkb_types::ContextId>)> =
        queries.iter().map(|&q| (q, Some(context))).collect();
    let in_process = server.serve_concepts_batch(&batch, k);
    let mut stream = connect();
    for (&q, served) in queries.iter().zip(&in_process) {
        let want = render_relaxation(&served.as_ref().expect("in-process serve").result);
        let (status, body) = http_roundtrip(
            &mut stream,
            "POST",
            "/relax",
            &[],
            &format!("{{\"concept\":{},\"context\":{},\"k\":{k}}}", q.raw(), context.raw()),
        );
        assert_eq!(status, 200, "{body}");
        assert!(
            body.ends_with(&format!("\"result\":{want}}}")),
            "wire answer diverged from in-process serve_concepts_batch for {q:?}"
        );
    }
    drop(stream);
    eprintln!(
        "[bench_json] wire bit-identity verified for {} queries at epoch {}",
        queries.len(),
        server.epoch()
    );

    // Load phase: `connections` keep-alive connections, each draining its
    // slice of one zipf(1.07) stream as fast as the server answers.
    let zipf = medkb_bench::zipf_query_stream(&queries, total_requests, 1.07, 0xC0FE);
    let per_conn = zipf.len().div_ceil(connections);
    let t_load = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = zipf
            .chunks(per_conn)
            .map(|slice| {
                scope.spawn(move || {
                    let mut stream = connect();
                    let mut us = Vec::with_capacity(slice.len());
                    for &q in slice {
                        let body = format!(
                            "{{\"concept\":{},\"context\":{},\"k\":{k}}}",
                            q.raw(),
                            context.raw()
                        );
                        let t = Instant::now();
                        let (status, resp) =
                            http_roundtrip(&mut stream, "POST", "/relax", &[], &body);
                        us.push(t.elapsed().as_secs_f64() * 1e6);
                        assert_eq!(status, 200, "{resp}");
                    }
                    us
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("load connection")).collect()
    });
    let load_s = t_load.elapsed().as_secs_f64();
    let qps = zipf.len() as f64 / load_s;
    let p50 = percentile(&mut latencies_us, 50.0);
    let p99 = percentile(&mut latencies_us, 99.0);
    let p999 = percentile(&mut latencies_us, 99.9);
    eprintln!(
        "[bench_json] {} requests over {connections} connections in {load_s:.2}s: \
         {qps:.0} qps, p50 {p50:.1}µs, p99 {p99:.1}µs, p999 {p999:.1}µs",
        zipf.len()
    );

    let snap = registry.snapshot();
    let coalesced_batches = snap.counter(hn::COALESCE_BATCHES);
    let coalesce_joined = snap.counter(hn::COALESCE_JOINED);
    let shed = snap.counter(hn::RESPONSES_SHED);
    let requests = snap.counter(hn::REQUESTS);
    assert!(
        coalesced_batches > 0,
        "acceptance criterion: {connections} concurrent connections must coalesce \
         (0 multi-member batches over {requests} requests)"
    );
    let hit_ratio = snap.counter_ratio(
        medkb_serve::obs_names::CACHE_HITS,
        medkb_serve::obs_names::CACHE_MISSES,
    );
    http.shutdown();

    // Traffic shaping (acceptance criterion): a fresh front end with a
    // tight bucket over the same RelaxServer — the greedy client blows
    // through its burst and sees 429s; a polite client with its own
    // identity is untouched.
    let shaped_registry = Registry::shared();
    let shaped = HttpServer::start(
        Arc::clone(&server),
        Some(Arc::clone(&shaped_registry)),
        HttpConfig {
            rate_limit: RateLimitConfig { rate_per_sec: 0.001, burst: 4.0 },
            ..HttpConfig::default()
        },
    )
    .expect("bind shaped http server");
    let shaped_addr = shaped.addr();
    let mut greedy = TcpStream::connect(shaped_addr).expect("connect greedy");
    greedy.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let probe_body = format!("{{\"concept\":{},\"k\":{k}}}", queries[0].raw());
    let mut greedy_429 = 0u64;
    for _ in 0..16 {
        let (status, _) = http_roundtrip(
            &mut greedy,
            "POST",
            "/relax",
            &[("x-medkb-client", "greedy")],
            &probe_body,
        );
        if status == 429 {
            greedy_429 += 1;
        }
    }
    let mut polite = TcpStream::connect(shaped_addr).expect("connect polite");
    polite.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut polite_429 = 0u64;
    for _ in 0..3 {
        let (status, _) = http_roundtrip(
            &mut polite,
            "POST",
            "/relax",
            &[("x-medkb-client", "polite")],
            &probe_body,
        );
        if status == 429 {
            polite_429 += 1;
        }
    }
    assert!(greedy_429 >= 8, "greedy client must be rate limited (saw {greedy_429} 429s)");
    assert_eq!(polite_429, 0, "polite client must be unaffected by the greedy one");
    let rate_limited =
        shaped_registry.snapshot().counter(hn::RESPONSES_RATE_LIMITED);
    assert_eq!(rate_limited, greedy_429, "429s must come from the token bucket");
    eprintln!(
        "[bench_json] shaping: greedy client {greedy_429}/16 rate-limited, polite 0/3"
    );
    shaped.shutdown();

    let metrics_json = snap.to_json();
    assert!(validate_json(&metrics_json), "metrics snapshot must be valid JSON");
    let json = format!(
        "{{\n  \"qps\": {qps:.1},\n  \
         \"p50_us\": {p50:.2},\n  \"p99_us\": {p99:.2},\n  \"p999_us\": {p999:.2},\n  \
         \"requests\": {},\n  \"connections\": {connections},\n  \
         \"load_s\": {load_s:.3},\n  \
         \"distinct_queries\": {},\n  \"zipf_exponent\": 1.07,\n  \
         \"coalesced_batches\": {coalesced_batches},\n  \
         \"coalesce_joined\": {coalesce_joined},\n  \
         \"shed\": {shed},\n  \
         \"hit_ratio\": {hit_ratio:.4},\n  \
         \"rate_limited_429s\": {greedy_429},\n  \"polite_429s\": {polite_429},\n  \
         \"wire_bit_identical\": true,\n  \
         \"k\": {k},\n  \"radius\": {radius},\n  \
         \"world_concepts\": {scale},\n  \
         \"metrics\": {metrics_json}\n}}\n",
        zipf.len(),
        queries.len(),
    );
    if quick {
        eprintln!("[bench_json] --quick: skipping BENCH_http.json write");
    } else {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_http.json");
        std::fs::write(out, &json).expect("write BENCH_http.json");
        eprintln!("[bench_json] wrote {out}");
    }
    println!("{json}");
}

/// Persistent-store benchmark (`--store`): one full re-ingest of the world
/// vs a cold `WorldStore::open` of the same artifacts (the restart-recovery
/// path of DESIGN.md §14), with bit-identity pinned on every opened copy
/// and the checksum-corruption rejection path exercised.
///
/// "Full re-ingest" is what a server restart without the store would pay to
/// rebuild `IngestOutput` from raw inputs: corpus mention counting, SGNS +
/// SIF embedding training (the default production matcher — the store
/// persists the trained model and index, so an open genuinely skips it),
/// and Algorithm 1. World generation is synthetic-bench scaffolding and
/// stays untimed, as does the `Ekg` clone the pipeline consumes. `--quick`
/// swaps the embedding matcher for `Exact` so the tier-1 smoke stays fast
/// (the embedding mapper's round-trip is pinned by
/// `crates/store/tests/round_trip.rs`); its speedup number is therefore a
/// drastic *under*-estimate and never gated on.
fn run_store_bench(quick: bool, scale: usize) {
    use medkb_store::WorldStore;

    let reps = if quick {
        2
    } else if scale > 100_000 {
        3
    } else {
        5
    };
    let k = 10usize;
    eprintln!("[bench_json] building {scale}-concept store-bench inputs…");
    let t_build = Instant::now();
    let (world, corpus) = scaled_world_and_corpus(scale);
    eprintln!("[bench_json] world + corpus built in {:.1}s", t_build.elapsed().as_secs_f64());
    let ekg = &world.terminology.ekg;
    let cfg = if quick {
        RelaxConfig { mapping: medkb_core::MappingMethod::Exact, ..RelaxConfig::default() }
    } else {
        RelaxConfig::default() // embedding matcher: the production pipeline
    };
    let sgns = medkb_embed::SgnsConfig { seed: 55, epochs: 4, ..medkb_embed::SgnsConfig::default() };

    // Re-ingest cost per rep: mention counting, embedding training (full
    // mode only, matching the matcher in `cfg`), then Algorithm 1.
    let mut reingest_s = Vec::with_capacity(reps);
    let mut counts_s = Vec::with_capacity(reps);
    let mut train_s = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let ekg_in = ekg.clone();
        let t = Instant::now();
        let counts = MentionCounts::count(&corpus, ekg);
        counts_s.push(t.elapsed().as_secs_f64());
        let t_train = Instant::now();
        let sif = if quick {
            None
        } else {
            let wv = medkb_embed::WordVectors::train(&corpus, &sgns);
            Some(Arc::new(medkb_embed::SifModel::fit(wv, &corpus, 1e-3)))
        };
        train_s.push(t_train.elapsed().as_secs_f64());
        let o = medkb_core::ingest(&world.kb, ekg_in, &counts, sif, &cfg).expect("ingest");
        reingest_s.push(t.elapsed().as_secs_f64());
        out = Some(o);
    }
    let out = out.expect("at least one rep");
    let reingest_p50 = median(&mut reingest_s);
    let counts_p50 = median(&mut counts_s);
    let train_p50 = median(&mut train_s);
    eprintln!(
        "[bench_json] re-ingest end-to-end: {reingest_p50:.3}s \
         (counting {counts_p50:.3}s, training {train_p50:.3}s)"
    );

    // Save once (timed), then repeated cold opens of the same file.
    let path = std::env::temp_dir().join(format!("medkb-bench-store-{}.bin", std::process::id()));
    let t = Instant::now();
    WorldStore::save(&out, &path).expect("store save");
    let save_s = t.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(&path).expect("store file").len();

    let mut open_s = Vec::with_capacity(reps);
    let mut opened = None;
    for _ in 0..reps {
        let t = Instant::now();
        let o = WorldStore::open(&path).expect("store open");
        open_s.push(t.elapsed().as_secs_f64());
        opened = Some(o);
    }
    let opened = opened.expect("at least one rep");
    let open_p50 = median(&mut open_s);
    let speedup = reingest_p50 / open_p50;
    eprintln!(
        "[bench_json] save {save_s:.3}s ({file_bytes} bytes), cold open {open_p50:.4}s \
         ({speedup:.0}x vs re-ingest)"
    );

    // A flipped byte anywhere in a section payload must be rejected as a
    // ValidationReport, never served.
    let mut corrupt = std::fs::read(&path).expect("read store file");
    let at = corrupt.len() / 2;
    corrupt[at] ^= 0x40;
    let bad = std::env::temp_dir().join(format!("medkb-bench-store-bad-{}.bin", std::process::id()));
    std::fs::write(&bad, &corrupt).expect("write corrupted file");
    match WorldStore::open(&bad) {
        Err(medkb_types::MedKbError::Validation(report)) => {
            assert!(!report.is_empty(), "corruption rejection must name a defect")
        }
        other => panic!("corrupted store must be rejected, got {other:?}"),
    }
    let _ = std::fs::remove_file(&bad);
    let _ = std::fs::remove_file(&path);

    // Bit-identity of the opened copy: structural equality on the heavy
    // components, then answer equality over 8 flagged queries.
    assert_eq!(opened.mappings, out.mappings, "mappings diverged through the store");
    assert_eq!(opened.freqs, out.freqs, "frequency tables diverged through the store");
    assert_eq!(opened.reach, out.reach, "reachability index diverged through the store");
    assert_eq!(opened.ekg.to_parts(), out.ekg.to_parts(), "ekg diverged through the store");
    let reach_bytes = out.reach.memory_bytes();
    let dense_bytes = out.reach.dense_equivalent_bytes();
    let exception_sets = out.reach.exception_set_count();
    let queries: Vec<ExtConceptId> = world
        .terminology
        .of_hierarchy_below(medkb_snomed::Hierarchy::ClinicalFinding, 3)
        .into_iter()
        .filter(|c| out.flagged.contains(c))
        .take(8)
        .collect();
    assert!(!queries.is_empty(), "store bench world has no flagged queries");
    let context = out
        .contexts
        .iter()
        .find(|s| s.label == "Indication-hasFinding-Finding")
        .expect("treatment context")
        .id;
    let plain = QueryRelaxer::new(out, cfg.clone());
    let from_store = QueryRelaxer::new(opened, cfg);
    for &q in &queries {
        let want = plain.relax_concept(q, Some(context), k).expect("relax");
        let got = from_store.relax_concept(q, Some(context), k).expect("relax from store");
        assert_eq!(got, want, "store-opened answers diverged");
    }
    eprintln!("[bench_json] store round-trip bit-identity OK ({} queries)", queries.len());

    let hybrid_ratio = dense_bytes as f64 / reach_bytes.max(1) as f64;
    if !quick && scale >= 350_000 {
        // Acceptance criteria (ISSUE 7) are gated at full SNOMED scale.
        assert!(
            speedup >= 100.0,
            "cold open {open_p50:.3}s not ≥100x faster than re-ingest {reingest_p50:.3}s"
        );
        assert!(
            reach_bytes * 20 < dense_bytes,
            "hybrid reach {reach_bytes}B not < 1/20 of dense {dense_bytes}B"
        );
    }

    let mapping_label = if quick { "exact" } else { "embedding" };
    let json = format!(
        "{{\n  \"re_ingest_p50_s\": {reingest_p50:.4},\n  \
         \"counts_p50_s\": {counts_p50:.4},\n  \
         \"train_p50_s\": {train_p50:.4},\n  \
         \"mapping\": \"{mapping_label}\",\n  \
         \"save_s\": {save_s:.4},\n  \
         \"cold_open_p50_s\": {open_p50:.4},\n  \
         \"cold_open_speedup\": {speedup:.1},\n  \
         \"file_bytes\": {file_bytes},\n  \
         \"reach_memory_bytes\": {reach_bytes},\n  \
         \"reach_dense_equivalent_bytes\": {dense_bytes},\n  \
         \"reach_dense_over_hybrid\": {hybrid_ratio:.1},\n  \
         \"reach_exception_sets\": {exception_sets},\n  \
         \"queries_checked\": {},\n  \"reps\": {reps},\n  \
         \"world_concepts\": {scale},\n  \
         \"ekg_concepts\": {},\n  \
         \"instances\": {},\n  \"docs\": {}\n}}\n",
        queries.len(),
        ekg.len(),
        world.kb.instance_count(),
        corpus.len(),
    );
    if quick {
        eprintln!("[bench_json] --quick: skipping BENCH_store.json write");
    } else {
        let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
        std::fs::write(out_path, &json).expect("write BENCH_store.json");
        eprintln!("[bench_json] wrote {out_path}");
    }
    println!("{json}");
}

/// Incremental-ingestion benchmark (`--delta`): document deltas of size
/// 1/10/100/1000 through [`medkb_core::DeltaEngine::apply`] against the
/// full re-ingest each one replaces, plus the cache-invalidation cost a
/// delta publish imposes on a zipf-distributed query stream.
///
/// The baseline is a full re-ingest of the **mutated** inputs with the
/// same frozen SIF model the engine holds — so the measured pair is the
/// honest either/or a server faces on a corpus update, and the baseline
/// output doubles as the bit-identity oracle (`outputs_identical`). The
/// with-training number (what a restart without a persisted model would
/// pay) is recorded separately. Delta documents are clones of existing
/// corpus documents, so their tokens are vocab-stable and the bench
/// exercises the incremental recount path, not the full-recount fallback
/// — pinned in-run by `delta.fallback_full_rebuilds == 0`.
fn run_delta_bench(quick: bool, scale: usize) {
    use medkb_core::delta::obs_names as dn;
    use medkb_core::{outputs_identical, Delta, DeltaEngine, DeltaOp};
    use medkb_serve::{RelaxServer, ServeConfig, ServedFrom};

    let reps = if quick {
        2
    } else if scale > 100_000 {
        3
    } else {
        5
    };
    let k = 10usize;
    eprintln!("[bench_json] building {scale}-concept delta-bench inputs…");
    let t_build = Instant::now();
    let (world, corpus) = scaled_world_and_corpus(scale);
    eprintln!("[bench_json] world + corpus built in {:.1}s", t_build.elapsed().as_secs_f64());
    let base = if quick {
        RelaxConfig { mapping: medkb_core::MappingMethod::Exact, ..RelaxConfig::default() }
    } else {
        RelaxConfig::default() // embedding matcher: the production pipeline
    };

    // Train the embedding model once and freeze it: deltas never retrain
    // (DESIGN.md §15), so both sides of the comparison share one model.
    let t_train = Instant::now();
    let sif = if quick {
        None
    } else {
        let sgns =
            medkb_embed::SgnsConfig { seed: 55, epochs: 4, ..medkb_embed::SgnsConfig::default() };
        let wv = medkb_embed::WordVectors::train(&corpus, &sgns);
        Some(Arc::new(medkb_embed::SifModel::fit(wv, &corpus, 1e-3)))
    };
    let train_s = t_train.elapsed().as_secs_f64();

    let registry = Registry::shared();
    let cfg_obs = RelaxConfig { obs: ObsConfig::with_registry(Arc::clone(&registry)), ..base.clone() };
    let t_engine = Instant::now();
    let mut engine = DeltaEngine::new(
        world.kb.clone(),
        corpus,
        world.terminology.ekg.clone(),
        sif.clone(),
        cfg_obs,
    )
    .expect("delta engine build");
    let engine_build_s = t_engine.elapsed().as_secs_f64();
    eprintln!("[bench_json] trained in {train_s:.1}s, engine built in {engine_build_s:.1}s");

    // A size-`docs` delta whose documents are clones of existing corpus
    // documents (vocab-stable by construction).
    let doc_delta = |engine: &DeltaEngine, docs: usize, seed: usize| -> Delta {
        let corpus = engine.corpus();
        let n = corpus.docs.len();
        let ops = (0..docs)
            .map(|i| {
                let doc = &corpus.docs[(seed + i * 7919) % n];
                let sentences = doc
                    .sentences
                    .iter()
                    .map(|s| {
                        let words = s
                            .tokens
                            .iter()
                            .map(|&tok| corpus.vocab.resolve(tok).to_string())
                            .collect();
                        (s.tag, words)
                    })
                    .collect();
                DeltaOp::AddDocument { sentences }
            })
            .collect();
        Delta::new(ops)
    };

    // Baseline: full re-ingest of the single-doc-mutated inputs, which is
    // also the bit-identity oracle for the applied delta.
    let delta = doc_delta(&engine, 1, 17);
    let inverse = engine.apply(&delta).expect("single-doc delta applies");
    let mut full_s = Vec::with_capacity(reps);
    let mut twin = None;
    for _ in 0..reps {
        let t = Instant::now();
        let counts = MentionCounts::count(engine.corpus(), engine.native_ekg());
        let out =
            medkb_core::ingest(engine.kb(), engine.native_ekg().clone(), &counts, sif.clone(), &base)
                .expect("full re-ingest of mutated inputs");
        full_s.push(t.elapsed().as_secs_f64());
        twin = Some(out);
    }
    let full_p50 = median(&mut full_s);
    assert!(
        outputs_identical(engine.output(), &twin.expect("at least one rep")),
        "delta-applied output diverged from a full re-ingest of the same inputs"
    );
    engine.apply(&inverse).expect("inverse restores the corpus");
    eprintln!(
        "[bench_json] full re-ingest of mutated inputs: {full_p50:.3}s \
         (bit-identity vs the applied delta OK)"
    );

    // Delta sizes: apply timed, revert via the engine-returned inverse so
    // every size starts from the same world.
    let mut rows = String::new();
    let mut single_doc_speedup = 0.0;
    for &docs in &[1usize, 10, 100, 1000] {
        let mut apply_s = Vec::with_capacity(reps);
        for rep in 0..reps {
            let delta = doc_delta(&engine, docs, 1 + docs * 31 + rep * 7);
            let t = Instant::now();
            let inverse = engine.apply(&delta).expect("doc delta applies");
            apply_s.push(t.elapsed().as_secs_f64());
            engine.apply(&inverse).expect("inverse applies");
        }
        let p50 = median(&mut apply_s);
        let speedup = full_p50 / p50;
        if docs == 1 {
            single_doc_speedup = speedup;
        }
        eprintln!(
            "[bench_json] delta of {docs} doc(s): apply p50 {p50:.4}s \
             ({speedup:.0}x vs full re-ingest)"
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"docs\": {docs}, \"apply_p50_s\": {p50:.6}, \
             \"speedup_vs_full_reingest\": {speedup:.1}}}"
        ));
    }

    // Vocab-stable document deltas must never trip the repair fallbacks:
    // reachability is untouched and the trie stays valid throughout.
    let snap = registry.snapshot();
    let fallbacks = snap.counter(dn::FALLBACK_FULL_REBUILDS);
    let full_recounts = snap.counter(dn::FULL_RECOUNTS);
    assert_eq!(fallbacks, 0, "document deltas must not fall back to reach rebuilds");
    assert_eq!(full_recounts, 0, "vocab-stable documents must recount incrementally");
    if !quick && scale >= 350_000 {
        // Acceptance criterion (ISSUE 8): a single-document delta lands
        // ≥50x faster than the full re-ingest it replaces, at SNOMED scale.
        assert!(
            single_doc_speedup >= 50.0,
            "single-doc delta speedup {single_doc_speedup:.1}x below the 50x floor"
        );
    }

    // Cache invalidation under a zipf stream (the serving-layer cost of a
    // publish): warm hits before, recompute-per-distinct-query after.
    let queries: Vec<ExtConceptId> = world
        .terminology
        .of_hierarchy_below(medkb_snomed::Hierarchy::ClinicalFinding, 3)
        .into_iter()
        .filter(|c| engine.output().flagged.contains(c))
        .take(32)
        .collect();
    assert!(!queries.is_empty(), "delta bench world has no flagged queries");
    let context = engine
        .output()
        .contexts
        .iter()
        .find(|s| s.label == "Indication-hasFinding-Finding")
        .expect("treatment context")
        .id;
    let stream = medkb_bench::zipf_query_stream(&queries, 256, 1.07, 0xD417);
    let distinct: std::collections::HashSet<ExtConceptId> = stream.iter().copied().collect();
    let server = RelaxServer::new(engine.output().clone(), base.clone(), ServeConfig::default());
    for &q in &stream {
        server.serve_concept(q, Some(context), k).expect("cache fill");
    }
    let mut warm_us = Vec::with_capacity(stream.len());
    for &q in &stream {
        let t = Instant::now();
        let served = server.serve_concept(q, Some(context), k).expect("warm serve");
        warm_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(served.served_from, ServedFrom::Cache, "warm stream must hit");
    }
    engine.apply(&doc_delta(&engine, 1, 53)).expect("publish delta applies");
    let t = Instant::now();
    let epoch = server.publish(engine.output().clone());
    let publish_us = t.elapsed().as_secs_f64() * 1e6;
    assert_eq!(epoch, 1);
    let mut post_us = Vec::with_capacity(stream.len());
    let mut recomputed = 0usize;
    for &q in &stream {
        let t = Instant::now();
        let served = server.serve_concept(q, Some(context), k).expect("post-publish serve");
        post_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(served.epoch, 1, "post-publish requests must see the new epoch");
        if served.served_from == ServedFrom::Computed {
            recomputed += 1;
        }
    }
    assert_eq!(
        recomputed,
        distinct.len(),
        "a publish must invalidate exactly once per distinct query"
    );
    let warm_p50 = median(&mut warm_us);
    let post_p50 = median(&mut post_us);
    eprintln!(
        "[bench_json] zipf stream: warm p50 {warm_p50:.2}µs, post-publish p50 {post_p50:.2}µs \
         ({recomputed}/{} distinct queries recomputed, publish {publish_us:.0}µs)",
        distinct.len()
    );

    let snap = registry.snapshot();
    let fallbacks = snap.counter(dn::FALLBACK_FULL_REBUILDS);
    let full_recounts = snap.counter(dn::FULL_RECOUNTS);
    assert_eq!(fallbacks, 0, "the publish delta must not regress the fallback counters");
    let applies = snap.counter(dn::APPLIES);
    let ops_applied = snap.counter(dn::OPS_APPLIED);
    let docs_recounted = snap.counter(dn::DOCS_RECOUNTED);
    let metrics_json = snap.to_json();
    assert!(validate_json(&metrics_json), "metrics snapshot must be valid JSON");
    let mapping_label = if quick { "exact" } else { "embedding" };
    let full_with_training = full_p50 + train_s;
    let json = format!(
        "{{\n  \"full_reingest_p50_s\": {full_p50:.4},\n  \
         \"full_reingest_with_training_s\": {full_with_training:.4},\n  \
         \"train_s\": {train_s:.4},\n  \
         \"engine_build_s\": {engine_build_s:.4},\n  \
         \"mapping\": \"{mapping_label}\",\n  \
         \"deltas\": [\n{rows}\n  ],\n  \
         \"single_doc_speedup\": {single_doc_speedup:.1},\n  \
         \"fallback_full_rebuilds\": {fallbacks},\n  \
         \"full_recounts\": {full_recounts},\n  \
         \"applies\": {applies},\n  \"ops_applied\": {ops_applied},\n  \
         \"docs_recounted\": {docs_recounted},\n  \
         \"zipf_invalidation\": {{\"stream_len\": {}, \"distinct_queries\": {}, \
         \"exponent\": 1.07, \"warm_p50_us\": {warm_p50:.2}, \
         \"post_publish_p50_us\": {post_p50:.2}, \"publish_us\": {publish_us:.1}, \
         \"recomputed\": {recomputed}}},\n  \
         \"queries\": {},\n  \"reps\": {reps},\n  \"k\": {k},\n  \
         \"world_concepts\": {scale},\n  \"docs\": {},\n  \
         \"metrics\": {metrics_json}\n}}\n",
        stream.len(),
        distinct.len(),
        queries.len(),
        engine.corpus().len(),
    );
    if quick {
        eprintln!("[bench_json] --quick: skipping BENCH_delta.json write");
    } else {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_delta.json");
        std::fs::write(out, &json).expect("write BENCH_delta.json");
        eprintln!("[bench_json] wrote {out}");
    }
    println!("{json}");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = world_scale_from_args();
    if std::env::args().any(|a| a == "--ingest") {
        run_ingest_bench(quick, scale);
        return;
    }
    if std::env::args().any(|a| a == "--serve") {
        run_serve_bench(quick, scale);
        return;
    }
    if std::env::args().any(|a| a == "--http") {
        run_http_bench(quick, scale);
        return;
    }
    if std::env::args().any(|a| a == "--store") {
        run_store_bench(quick, scale);
        return;
    }
    if std::env::args().any(|a| a == "--delta") {
        run_delta_bench(quick, scale);
        return;
    }
    let radius = 4u32;
    let k = 10usize;
    let reps = if quick { 2 } else { 5 };

    eprintln!("[bench_json] building {scale}-concept benchmark world…");
    let t_build = Instant::now();
    let RelaxBenchWorld { relaxer, queries, context } = scaled_relaxation_bench_world(scale, true);
    eprintln!("[bench_json] world built + ingested in {:.1}s", t_build.elapsed().as_secs_f64());
    let mut cfg = relaxer.config().clone();
    cfg.radius = radius;
    cfg.dynamic_radius = false;
    let relaxer = QueryRelaxer::new(relaxer.ingested().clone(), cfg);

    let candidates: Vec<usize> = queries
        .iter()
        .map(|&q| {
            relaxer
                .ingested()
                .ekg
                .neighborhood(q, radius)
                .into_iter()
                .filter(|(c, _)| *c != q && relaxer.ingested().flagged.contains(c))
                .count()
        })
        .collect();
    let candidates_mean =
        candidates.iter().sum::<usize>() as f64 / candidates.len().max(1) as f64;

    // An instrumented twin of the engine over the same ingestion: used to
    // measure the cost of metrics recording and to snapshot the engine
    // counters for the JSON output.
    let registry = Registry::shared();
    let cfg_obs = RelaxConfig {
        obs: ObsConfig::with_registry(Arc::clone(&registry)),
        ..relaxer.config().clone()
    };
    let relaxer_obs = QueryRelaxer::new(relaxer.ingested().clone(), cfg_obs);

    // Warm up both paths once, then interleave full measurement passes.
    time_queries(&relaxer, &queries, context, k, 1, true);
    time_queries(&relaxer, &queries, context, k, 1, false);
    time_queries(&relaxer_obs, &queries, context, k, 1, false);
    let mut reference_us = time_queries(&relaxer, &queries, context, k, reps, true);
    let mut scoped_us = time_queries(&relaxer, &queries, context, k, reps, false);
    let mut obs_us = time_queries(&relaxer_obs, &queries, context, k, reps, false);

    let t_batch = Instant::now();
    let batch: Vec<(ExtConceptId, Option<medkb_types::ContextId>)> =
        queries.iter().map(|&q| (q, Some(context))).collect();
    for _ in 0..reps {
        for res in relaxer.relax_concepts_batch(&batch, k) {
            res.expect("batch relaxation succeeds");
        }
    }
    let batch_us_per_query =
        t_batch.elapsed().as_secs_f64() * 1e6 / (queries.len() * reps) as f64;
    // One instrumented batch pass so shard-utilization metrics land in the
    // snapshot (results must match the plain engine's).
    for (res, plain) in relaxer_obs
        .relax_concepts_batch(&batch, k)
        .into_iter()
        .zip(relaxer.relax_concepts_batch(&batch, k))
    {
        assert_eq!(
            res.expect("instrumented batch"),
            plain.expect("plain batch"),
            "instrumentation changed a result"
        );
    }

    let reference_median = median(&mut reference_us);
    let reference_p99 = percentile(&mut reference_us, 99.0);
    let scoped_median = median(&mut scoped_us);
    let scoped_p99 = percentile(&mut scoped_us, 99.0);
    let obs_median = median(&mut obs_us);
    let speedup = reference_median / scoped_median;
    let obs_overhead_pct = (obs_median / scoped_median - 1.0) * 100.0;
    eprintln!(
        "[bench_json] scoped p50 {scoped_median:.1}µs / p99 {scoped_p99:.1}µs, \
         instrumented {obs_median:.1}µs ({obs_overhead_pct:+.2}% overhead)"
    );

    // Smoke contract: the snapshot parses as JSON and every engine metric
    // is present with plausible totals.
    let snap = registry.snapshot();
    let metrics_json = snap.to_json();
    assert!(validate_json(&metrics_json), "metrics snapshot must be valid JSON");
    use medkb_core::relax::obs_names as rn;
    for name in [rn::QUERIES, rn::CANDIDATES_SCANNED, rn::CANDIDATES_KEPT, rn::LCS_EVALS] {
        assert!(snap.counter(name) > 0, "engine counter missing or zero: {name}");
    }
    assert!(snap.histogram_count(rn::LATENCY_US) > 0, "latency histogram empty");
    assert!(snap.counter(rn::BATCH_SHARDS) > 0, "batch shard counter empty");

    // Score-bounded pruning accounting (DESIGN.md §13): every kept
    // candidate was either LCS-evaluated or skipped on its upper bound, and
    // the default configuration must actually save evaluations.
    let lcs_evals = snap.counter(rn::LCS_EVALS);
    let bound_skips = snap.counter(rn::BOUND_SKIPS);
    let rings_terminated = snap.counter(rn::RINGS_TERMINATED);
    assert_eq!(
        lcs_evals + bound_skips,
        snap.counter(rn::CANDIDATES_KEPT),
        "kept candidates must split into evals + bound skips"
    );
    let lcs_evals_saved_pct = 100.0 * bound_skips as f64 / (lcs_evals + bound_skips).max(1) as f64;
    eprintln!(
        "[bench_json] lcs evals {lcs_evals}, bound skips {bound_skips} \
         ({lcs_evals_saved_pct:.1}% saved), rings terminated {rings_terminated}"
    );
    assert!(bound_skips > 0, "default workload must skip some LCS evals via bounds");

    let json = format!(
        "{{\n  \"median_us_per_query\": {scoped_median:.2},\n  \
         \"p50_us_per_query\": {scoped_median:.2},\n  \
         \"p99_us_per_query\": {scoped_p99:.2},\n  \
         \"reference_median_us_per_query\": {reference_median:.2},\n  \
         \"reference_p99_us_per_query\": {reference_p99:.2},\n  \
         \"speedup_vs_reference\": {speedup:.2},\n  \
         \"batch_us_per_query\": {batch_us_per_query:.2},\n  \
         \"obs_median_us_per_query\": {obs_median:.2},\n  \
         \"obs_overhead_pct\": {obs_overhead_pct:.2},\n  \
         \"lcs_evals\": {lcs_evals},\n  \
         \"lcs_bound_skips\": {bound_skips},\n  \
         \"lcs_evals_saved_pct\": {lcs_evals_saved_pct:.2},\n  \
         \"rings_terminated\": {rings_terminated},\n  \
         \"queries\": {},\n  \"reps\": {reps},\n  \
         \"candidates_mean\": {candidates_mean:.2},\n  \
         \"radius\": {radius},\n  \"k\": {k},\n  \
         \"world_concepts\": {scale},\n  \
         \"metrics\": {metrics_json}\n}}\n",
        queries.len()
    );
    if quick {
        eprintln!("[bench_json] --quick: skipping BENCH_relax.json write");
    } else {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_relax.json");
        std::fs::write(out, &json).expect("write BENCH_relax.json");
        eprintln!("[bench_json] wrote {out}");
    }
    println!("{json}");
}
