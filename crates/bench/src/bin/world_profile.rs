//! Phase timing for scaled world generation (`--world-scale N`).
//!
//! Splits the cost of building a benchmark world into its public phases —
//! terminology generation, oracle derivation, full world assembly, corpus
//! generation — so superlinear growth at SNOMED scale is attributable to a
//! phase instead of one opaque wall-clock number (EXPERIMENTS.md, 350k
//! scaling tables):
//!
//! ```text
//! cargo run --release -p medkb-bench --bin world_profile -- --world-scale 350000
//! ```

use std::time::Instant;

use medkb_bench::world_scale_from_args;
use medkb_corpus::{CorpusConfig, CorpusGenerator};
use medkb_snomed::{GeneratedTerminology, MedWorld, Oracle, SnomedConfig, WorldConfig};

fn main() {
    let concepts = world_scale_from_args();
    let f = (concepts as f64 / 4_000.0).sqrt();
    let scaled = |base: usize| -> usize { ((base as f64) * f).round() as usize };
    let snomed = SnomedConfig {
        concepts,
        seed: 52,
        max_depth: if concepts > 100_000 { 20 } else { SnomedConfig::default().max_depth },
        ..SnomedConfig::default()
    };

    let t = Instant::now();
    let term = GeneratedTerminology::generate(&snomed);
    let term_s = t.elapsed().as_secs_f64();
    println!("terminology_s: {term_s:.2}  ({} concepts)", term.ekg.len());

    let t = Instant::now();
    let _oracle = Oracle::derive(&term, 53 ^ 0x0BAC_1E5E);
    let oracle_s = t.elapsed().as_secs_f64();
    println!("oracle_s: {oracle_s:.2}");
    drop(term);

    let config = WorldConfig {
        snomed,
        seed: 53,
        finding_instances: scaled(900),
        drug_instances: scaled(200),
        ..WorldConfig::default()
    };
    let t = Instant::now();
    let world = MedWorld::generate(&config);
    let world_s = t.elapsed().as_secs_f64();
    println!(
        "world_s: {world_s:.2}  (kb_assembly_s: {:.2}, {} instances)",
        world_s - term_s - oracle_s,
        world.kb.instance_count()
    );

    let t = Instant::now();
    let corpus = CorpusGenerator::new(&world.terminology, &world.oracle).generate(&CorpusConfig {
        seed: 54,
        docs: scaled(250),
        ..CorpusConfig::default()
    });
    println!("corpus_s: {:.2}  ({} docs)", t.elapsed().as_secs_f64(), corpus.len());
}
