//! Ablations of the design choices DESIGN.md §5 calls out:
//!
//! 1. Eq. 2 frequency semantics: paper-literal recursion vs exact
//!    descendant sets.
//! 2. §5.1 shortcut edges on/off.
//! 3. tf-idf adjustment of mention counts on/off.
//! 4. Eq. 4 generalization-weight sweep (0.5 … 1.0), plus the logistic
//!    regression fit of §5.2 on oracle-labeled paths.
//! 5. Fixed vs dynamic radius.
//!
//! ```text
//! cargo run --release -p medkb-bench --bin ablation [--quick]
//! ```

use medkb_core::weights::{fit_direction_weights, PathExample};
use medkb_core::{FrequencyMode, QueryRelaxer, RelaxConfig};
use medkb_ekg::lcs::lcs;
use medkb_eval::relax_eval::{build_workload, pool_and_score, Workload};
use medkb_eval::report::render_table2;
use medkb_snomed::oracle::DEFAULT_RELEVANCE_THRESHOLD;
use medkb_snomed::Oracle;
use medkb_types::ExtConceptId;

fn run_variant(
    relaxer: &QueryRelaxer,
    workload: &Workload,
    k: usize,
) -> Vec<Vec<ExtConceptId>> {
    let queries: Vec<_> = workload.queries.iter().map(|&(q, ctx, _)| (q, Some(ctx))).collect();
    relaxer
        .relax_concepts_batch(&queries, k)
        .into_iter()
        .map(|res| res.map(|r| r.concepts().into_iter().take(k).collect()).unwrap_or_default())
        .collect()
}

fn main() {
    let stack = medkb_bench::stack_from_args();
    let n = if std::env::args().any(|a| a == "--quick") { 25 } else { 80 };
    let workload = build_workload(&stack, n);
    let base = stack.config.relax.clone();
    let k = 10;

    // —— Runtime + ingest-time variants ——
    let mut labels: Vec<&'static str> = Vec::new();
    let mut runs: Vec<Vec<Vec<ExtConceptId>>> = Vec::new();
    let push =
        |labels: &mut Vec<&'static str>, runs: &mut Vec<Vec<Vec<ExtConceptId>>>,
         label: &'static str,
         relaxer: &QueryRelaxer| {
            labels.push(label);
            runs.push(run_variant(relaxer, &workload, k));
        };

    let default_relaxer = stack.relaxer(base.clone());
    push(&mut labels, &mut runs, "QR (default)", &default_relaxer);

    let wg = |w: f64| RelaxConfig { w_gen: w, ..base.clone() };
    for (label, w) in [
        ("w_gen = 0.5", 0.5),
        ("w_gen = 0.7", 0.7),
        ("w_gen = 0.95", 0.95),
        ("w_gen = 1.0 (no direction)", 1.0),
    ] {
        let relaxer = stack.relaxer(wg(w));
        push(&mut labels, &mut runs, label, &relaxer);
    }

    let fixed = stack.relaxer(RelaxConfig { dynamic_radius: false, ..base.clone() });
    push(&mut labels, &mut runs, "fixed radius r=4", &fixed);

    let no_tfidf_ing = stack
        .ingest_with_config(&RelaxConfig { use_tfidf: false, ..base.clone() })
        .expect("ingest");
    let no_tfidf = QueryRelaxer::new(no_tfidf_ing, RelaxConfig { use_tfidf: false, ..base.clone() });
    push(&mut labels, &mut runs, "no tf-idf", &no_tfidf);

    let exact_freq_ing = stack
        .ingest_with_config(&RelaxConfig {
            frequency_mode: FrequencyMode::DescendantSet,
            ..base.clone()
        })
        .expect("ingest");
    let exact_freq = QueryRelaxer::new(
        exact_freq_ing,
        RelaxConfig { frequency_mode: FrequencyMode::DescendantSet, ..base.clone() },
    );
    push(&mut labels, &mut runs, "exact descendant-set freq", &exact_freq);

    let no_shortcut_ing = stack
        .ingest_with_config(&RelaxConfig { add_shortcuts: false, ..base.clone() })
        .expect("ingest");
    let no_shortcuts =
        QueryRelaxer::new(no_shortcut_ing, RelaxConfig { add_shortcuts: false, ..base.clone() });
    push(&mut labels, &mut runs, "no shortcut edges", &no_shortcuts);

    let rows = pool_and_score(&stack, &workload, DEFAULT_RELEVANCE_THRESHOLD, &labels, &runs, k);
    println!("# Ablations ({n}-query workload, pooled oracle judgments)\n");
    println!("{}", render_table2(&rows));

    // —— Shortcut effect on retrieval effort ——
    let mut grown_default = 0usize;
    let mut grown_noshort = 0usize;
    for &(q, ctx, _) in &workload.queries {
        if let Ok(r) = default_relaxer.relax_concept(q, Some(ctx), k) {
            grown_default += (r.radius_used > base.radius) as usize;
        }
        if let Ok(r) = no_shortcuts.relax_concept(q, Some(ctx), k) {
            grown_noshort += (r.radius_used > base.radius) as usize;
        }
    }
    println!(
        "radius had to grow beyond r=4 on {grown_default}/{} queries with shortcuts, \
         {grown_noshort}/{} without",
        workload.queries.len(),
        workload.queries.len()
    );

    // —— Extra mapping method: Soundex phonetics ——
    let mapping_rows = medkb_eval::mapping_eval::evaluate_mappings_with(
        &stack,
        &[
            ("EXACT", medkb_core::MappingMethod::Exact),
            ("PHONETIC", medkb_core::MappingMethod::Phonetic),
        ],
    );
    println!("\nextra mapping method (vs EXACT):");
    for r in mapping_rows {
        println!(
            "  {:<9} P = {:6.2}  R = {:6.2}  F1 = {:6.2}",
            r.method, r.prf.precision, r.prf.recall, r.prf.f1
        );
    }

    // —— EMBEDDING mapper threshold sweep (precision/recall trade-off) ——
    let sweep = medkb_eval::mapping_eval::embedding_threshold_sweep(
        &stack,
        &[0.0, 0.5, 0.7, 0.8, 0.82, 0.9, 0.95],
    );
    println!("\nEMBEDDING mapper acceptance-threshold sweep:");
    for (t, prf) in sweep {
        println!("  t = {t:<5} P = {:6.2}  R = {:6.2}  F1 = {:6.2}", prf.precision, prf.recall, prf.f1);
    }

    // —— §5.2: learn the direction weights by logistic regression ——
    let term = &stack.world.terminology;
    let mut examples: Vec<PathExample> = Vec::new();
    for &(q, _, tag) in workload.queries.iter().take(40) {
        let ext_q = Oracle::extension(&term.ekg, q);
        for (b, _) in stack.ingested.ekg.neighborhood(q, 4) {
            if !stack.ingested.flagged.contains(&b) {
                continue;
            }
            let out = lcs(&stack.ingested.ekg, q, b);
            let relevant = stack.world.oracle.relevance(term, &ext_q, q, b, tag)
                >= DEFAULT_RELEVANCE_THRESHOLD;
            examples.push(PathExample { ups: out.dist_a, downs: out.dist_b, relevant });
        }
    }
    let learned = fit_direction_weights(&examples);
    println!(
        "\nlogistic-regression direction weights over {} labeled paths: \
         w_gen = {:.3}, w_spec = {:.3} (paper's empirical choice: 0.9 / 1.0)",
        examples.len(),
        learned.w_gen,
        learned.w_spec
    );
    medkb_bench::print_metrics_section(&stack);
}
