//! Regenerate the worked numbers of **Figures 4, 5 and 6** on the
//! hand-built paper fragment.
//!
//! ```text
//! cargo run --release -p medkb-bench --bin figures
//! ```

use std::collections::HashMap;

use medkb_core::{ingest, FrequencyMode, Frequencies, MappingMethod, RelaxConfig};
use medkb_corpus::MentionCounts;
use medkb_ekg::path::path_between;
use medkb_snomed::figures::paper_fragment;
use medkb_snomed::oracle::N_TAGS;
use medkb_snomed::ContextTag;
use medkb_types::ExtConceptId;

fn main() {
    let f = paper_fragment();

    // —— Figure 4: per-context frequency rollup ——
    println!("# Figure 4: per-context concept frequencies (craniofacial pain subtree)\n");
    let mut direct: HashMap<ExtConceptId, [u64; N_TAGS]> = HashMap::new();
    for &(name, treat, risk) in &f.fig4_direct_counts {
        let mut row = [0u64; N_TAGS];
        row[ContextTag::Treatment.index()] = treat;
        row[ContextTag::Risk.index()] = risk;
        direct.insert(f.concept(name), row);
    }
    let counts = MentionCounts::from_direct(direct, HashMap::new(), 100);
    let freqs = Frequencies::compute(&f.ekg, &counts, FrequencyMode::PaperRecursive, false);
    println!("| concept | freq(Indication ctx) | freq(Risk ctx) |");
    println!("|---|---|---|");
    for name in [
        "frequent headache",
        "headache",
        "craniofacial pain",
        "pain in throat",
        "pain of head and neck region",
    ] {
        let c = f.concept(name);
        let t = freqs.freq(c, ContextTag::Treatment) * freqs.total(ContextTag::Treatment);
        let r = freqs.freq(c, ContextTag::Risk) * freqs.total(ContextTag::Risk);
        println!("| {name} | {t:.0} | {r:.0} |");
    }
    println!("\npaper: freq(pain of head and neck region) = 18878 + 283 + 3 = 19164 \
              (Indication), 1656 (Risk)\n");

    // —— Figure 5: shortcut customization ——
    println!("# Figure 5: sparsity customization (chronic kidney disease chain)\n");
    let mut ob = medkb_ontology::OntologyBuilder::new();
    let finding = ob.concept("Finding");
    let drug = ob.concept("Drug");
    ob.relationship("treats", drug, finding);
    let onto = ob.build().unwrap();
    let mut kb = medkb_kb::KbBuilder::new(onto);
    let fc = kb.ontology().lookup_concept("Finding").unwrap();
    kb.instance("kidney disease", fc);
    let kb = kb.build().unwrap();
    let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 1);
    let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
    let deep_name = "chronic kidney disease stage 1 due to hypertension";
    let before = {
        let deep = f.concept(deep_name);
        let kd = f.concept("kidney disease");
        (
            f.ekg.neighborhood(deep, 1).iter().any(|&(c, _)| c == kd),
            f.ekg.distance_to_ancestor(deep, kd).unwrap(),
        )
    };
    let out = ingest(&kb, f.ekg.clone(), &counts, None, &config).unwrap();
    let deep = out.ekg.lookup_name(deep_name)[0];
    let kd = out.ekg.lookup_name("kidney disease")[0];
    let edge = out.ekg.parents(deep).iter().find(|e| e.to == kd).unwrap();
    println!("before ingestion: 1-hop reachable = {}, semantic distance = {}", before.0, before.1);
    println!(
        "after ingestion:  1-hop reachable = {}, shortcut edge weight (original distance) = {}",
        out.ekg.neighborhood(deep, 1).iter().any(|&(c, _)| c == kd),
        edge.weight
    );
    println!("(paper: 3 hops collapse to 1, original distance 3 preserved on the edge)\n");

    // —— Figure 6: direction-weighted path penalty ——
    println!("# Figure 6: direction-dependent path weights (w_gen = 0.9, w_spec = 1)\n");
    let pneumonia = f.concept("pneumonia");
    let lrti = f.concept("lower respiratory tract infection");
    let (fwd, _) = path_between(&f.ekg, pneumonia, lrti);
    let (rev, _) = path_between(&f.ekg, lrti, pneumonia);
    println!(
        "pneumonia → LRTI: {} ups + {} downs, p = {:.4} (= 0.9^6 = {:.4})",
        fwd.ups,
        fwd.downs,
        fwd.weight(0.9, 1.0),
        0.9f64.powi(6)
    );
    println!(
        "LRTI → pneumonia: {} ups + {} downs, p = {:.4} (= 0.9^3 = {:.4})",
        rev.ups,
        rev.downs,
        rev.weight(0.9, 1.0),
        0.9f64.powi(3)
    );
}
