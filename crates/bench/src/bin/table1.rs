//! Regenerate **Table 1**: accuracy of the instance→concept mapping
//! methods (EXACT, EDIT τ=2, EMBEDDING).
//!
//! ```text
//! cargo run --release -p medkb-bench --bin table1 [--quick]
//! ```

use medkb_eval::{evaluate_mappings, report::render_table1};

fn main() {
    let stack = medkb_bench::stack_from_args();
    let rows = evaluate_mappings(&stack);
    println!("# Table 1: Accuracy of mapping methods\n");
    println!("{}", render_table1(&rows));
    println!(
        "({} gold-mappable entity instances; paper reference: EXACT 100/83.33/90.01, \
         EDIT 96.36/88.33/92.17, EMBEDDING 96.49/91.67/94.02)",
        rows[0].mappable
    );
    medkb_bench::print_metrics_section(&stack);
}
