use medkb_eval::pipeline::{EvalConfig, EvalStack};
use medkb_eval::relax_eval::{build_workload, evaluate_relaxation_on};
use medkb_eval::evaluate_mappings;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let stack = EvalStack::build(EvalConfig::paper(2020)).unwrap();
    eprintln!("stack built in {:?}", t0.elapsed());
    eprintln!("world: {} concepts, {} instances, {} mapped, {} shortcuts",
        stack.world.terminology.ekg.len(), stack.world.kb.instance_count(),
        stack.ingested.mappings.len(), stack.ingested.shortcuts_added);
    let t1 = Instant::now();
    for row in evaluate_mappings(&stack) {
        println!("T1 {:<10} P={:6.2} R={:6.2} F1={:6.2}", row.method, row.prf.precision, row.prf.recall, row.prf.f1);
    }
    eprintln!("table1 in {:?}", t1.elapsed());
    let t2 = Instant::now();
    let w = build_workload(&stack, 100);
    for th in [0.08, 0.10, 0.13] {
        println!("--- threshold {th} ---");
        for row in evaluate_relaxation_on(&stack, &w, th) {
            println!("T2 {:<22} P@10={:6.2} R@10={:6.2} F1={:6.2} ({} q)", row.method, row.prf.precision, row.prf.recall, row.prf.f1, row.queries);
        }
    }
    eprintln!("table2 in {:?}", t2.elapsed());
}
