//! Regenerate **Table 3**: the user study of the conversational system
//! with and without query relaxation (simulated SMEs; see
//! `medkb-eval::study` for the simulation contract).
//!
//! ```text
//! cargo run --release -p medkb-bench --bin table3 [--quick]
//! ```

use medkb_eval::{report::render_table3, run_user_study, StudyConfig};

fn main() {
    let stack = medkb_bench::stack_from_args();
    let config = if std::env::args().any(|a| a == "--quick") {
        StudyConfig::tiny(medkb_bench::EXPERIMENT_SEED)
    } else {
        StudyConfig { seed: medkb_bench::EXPERIMENT_SEED, ..StudyConfig::default() }
    };
    let report = run_user_study(&stack, &config);
    println!(
        "# Table 3: Watson-Assistant-style conversation with and without QR\n"
    );
    println!("{}", render_table3(&report));
    for (label, task) in [
        ("QR T1", &report.qr_t1),
        ("QR T2", &report.qr_t2),
        ("no-QR T1", &report.noqr_t1),
        ("no-QR T2", &report.noqr_t2),
    ] {
        println!(
            "{label}: {} graded questions, incidents: {} KB-gap, {} flow, {} unexplained, \
             {} overload",
            task.grades.len(),
            task.incidents.kb_gap,
            task.incidents.flow,
            task.incidents.unexplained,
            task.incidents.overload
        );
    }
    println!(
        "\n(paper reference averages: QR T1 3.73, QR T2 3.31, no-QR T1 3.06, no-QR T2 2.67)"
    );
    medkb_bench::print_metrics_section(&stack);
}
