//! Experiment regeneration and benchmarking support.
//!
//! Binaries (one per published table/figure — see DESIGN.md §4):
//!
//! * `table1` — mapping-method accuracy (paper Table 1),
//! * `table2` — relaxation effectiveness (paper Table 2),
//! * `table3` — simulated user study (paper Table 3),
//! * `figures` — the worked numbers of Figures 4, 5 and 6,
//! * `ablation` — the design-choice ablations of DESIGN.md §5.
//!
//! Criterion benches (`benches/`): ingestion scaling, online relaxation
//! latency (the §5 complexity claims), mapping-method throughput, and
//! substrate micro-benchmarks.

#![warn(missing_docs)]

use medkb_core::{ingest, MappingMethod, ObsConfig, QueryRelaxer, RelaxConfig};
use medkb_corpus::{CorpusConfig, CorpusGenerator, MentionCounts};
use medkb_eval::pipeline::{EvalConfig, EvalStack};
use medkb_snomed::{Hierarchy, MedWorld, SnomedConfig, WorldConfig};
use medkb_types::{ContextId, ExtConceptId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The seed all experiment binaries share (results are deterministic).
pub const EXPERIMENT_SEED: u64 = 2020;

/// Build the paper-scale stack used by the table binaries, caching the
/// embedding models under `target/medkb-cache` so repeated table runs skip
/// the training step.
pub fn paper_stack() -> EvalStack {
    let cache = std::path::Path::new("target/medkb-cache");
    EvalStack::build_cached(EvalConfig::paper(EXPERIMENT_SEED), cache).expect("stack builds")
}

/// Build a reduced stack for quick runs (`--quick` flag of the binaries).
pub fn quick_stack() -> EvalStack {
    EvalStack::build(EvalConfig::tiny(EXPERIMENT_SEED)).expect("stack builds")
}

/// Parse the common flags of the table binaries: `--quick` selects the
/// reduced world, `--metrics` attaches a shared metrics registry to the
/// stack so [`print_metrics_section`] can report it after the tables.
pub fn stack_from_args() -> EvalStack {
    let metrics = std::env::args().any(|a| a == "--metrics");
    let quick = std::env::args().any(|a| a == "--quick");
    let mut config = if quick {
        eprintln!("[medkb-bench] --quick: reduced world (shapes only)");
        EvalConfig::tiny(EXPERIMENT_SEED)
    } else {
        eprintln!("[medkb-bench] building paper-scale stack (seed {EXPERIMENT_SEED})…");
        EvalConfig::paper(EXPERIMENT_SEED)
    };
    if metrics {
        config.relax.obs = ObsConfig::enabled();
        // The model cache would skip the SGNS epochs the registry is
        // meant to observe; a metrics run pays for a cold build.
        return EvalStack::build(config).expect("stack builds");
    }
    if quick {
        EvalStack::build(config).expect("stack builds")
    } else {
        let cache = std::path::Path::new("target/medkb-cache");
        EvalStack::build_cached(config, cache).expect("stack builds")
    }
}

/// Append the eval report's pipeline-metrics section when `--metrics`
/// attached a registry to the stack ([`stack_from_args`]); off by default
/// so the table outputs stay byte-reproducible run to run (the full
/// snapshot carries wall-clock timer values).
pub fn print_metrics_section(stack: &EvalStack) {
    if let Some(registry) = stack.config.relax.obs.registry() {
        println!("\n{}", medkb_eval::report::render_metrics(&registry.snapshot()));
    }
}

/// The 4k-concept relaxation benchmark world shared by the `relaxation`
/// Criterion bench and the `bench_json` binary, so their numbers are
/// directly comparable.
pub struct RelaxBenchWorld {
    /// Relaxer over the ingested world.
    pub relaxer: QueryRelaxer,
    /// 32 popular flagged clinical-finding query concepts.
    pub queries: Vec<ExtConceptId>,
    /// The `Indication-hasFinding-Finding` (treatment) context.
    pub context: ContextId,
}

/// The raw inputs of the 4k-concept benchmark world: generated world plus
/// curation corpus, before mention counting. The ingestion benchmark
/// (`bench_json --ingest`) times counting and ingestion itself, so it needs
/// the pieces; `relaxation_bench_world` assembles them.
pub fn bench_world_and_corpus() -> (MedWorld, medkb_corpus::Corpus) {
    scaled_world_and_corpus(4_000)
}

/// The default concept count of the benchmark world (the tier-1 fast path).
pub const DEFAULT_WORLD_SCALE: usize = 4_000;

/// Parse the `--world-scale N` / `--world-scale=N` flag shared by the
/// benchmark binaries. The default keeps the 4k tier-1 smoke path fast;
/// full-scale runs pass `--world-scale 350000` to benchmark at SNOMED CT's
/// concept count.
pub fn world_scale_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--world-scale=") {
            return v.parse().expect("--world-scale=N takes an integer");
        }
        if a == "--world-scale" {
            let v = args.get(i + 1).expect("--world-scale needs a value");
            return v.parse().expect("--world-scale N takes an integer");
        }
    }
    DEFAULT_WORLD_SCALE
}

/// Generated world plus curation corpus at an arbitrary concept count.
///
/// `scaled_world_and_corpus(4_000)` is exactly the classic benchmark world
/// (same seeds, same instance and document counts), so the committed 4k
/// baselines stay comparable. Other scales keep the SNOMED-like shape —
/// multi-parent DAG, deep modifier chains, Zipf popularity driving the
/// corpus — while growing the satellite populations sublinearly
/// (`√(concepts/4000)`): KB instances and curation documents are workload
/// parameters, not graph structure, and linear growth would make the
/// 350k-concept world's *corpus* the benchmark bottleneck instead of the
/// 87×-larger graph the scale run is about. Worlds above 100k concepts
/// deepen the hierarchy cap to 20 levels (SNOMED's long modifier chains);
/// the branching factor stays in the SNOMED-like single digits.
pub fn scaled_world_and_corpus(concepts: usize) -> (MedWorld, medkb_corpus::Corpus) {
    let f = (concepts as f64 / 4_000.0).sqrt();
    let scaled = |base: usize| -> usize { ((base as f64) * f).round() as usize };
    let config = WorldConfig {
        snomed: SnomedConfig {
            concepts,
            seed: 52,
            max_depth: if concepts > 100_000 { 20 } else { SnomedConfig::default().max_depth },
            ..SnomedConfig::default()
        },
        seed: 53,
        finding_instances: scaled(900),
        drug_instances: scaled(200),
        ..WorldConfig::default()
    };
    let world = MedWorld::generate(&config);
    let corpus = CorpusGenerator::new(&world.terminology, &world.oracle).generate(&CorpusConfig {
        seed: 54,
        docs: scaled(250),
        ..CorpusConfig::default()
    });
    (world, corpus)
}

/// A Zipf-skewed query stream of length `len` over `queries`: the rank-`r`
/// entry is drawn with probability ∝ 1/(r+1)^`exponent`, the head-heavy
/// shape of real medical query logs. Deterministic in `seed`, so benches
/// built on it are reproducible run to run.
///
/// Pruning- and cache-sensitive benchmarks want this shape rather than a
/// round-robin sweep: a skewed stream revisits hot queries whose candidate
/// rings the bounded scan terminates early, which is exactly the regime the
/// latency claims are about.
pub fn zipf_query_stream(
    queries: &[ExtConceptId],
    len: usize,
    exponent: f64,
    seed: u64,
) -> Vec<ExtConceptId> {
    assert!(!queries.is_empty(), "zipf stream needs a non-empty query set");
    let weights: Vec<f64> =
        (0..queries.len()).map(|r| 1.0 / ((r + 1) as f64).powf(exponent)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let u: f64 = rng.gen();
            let idx = cdf.partition_point(|&c| c < u).min(queries.len() - 1);
            queries[idx]
        })
        .collect()
}

/// Build the fixed 4k-concept world the relaxation benchmarks run on.
pub fn relaxation_bench_world(shortcuts: bool) -> RelaxBenchWorld {
    scaled_relaxation_bench_world(DEFAULT_WORLD_SCALE, shortcuts)
}

/// [`relaxation_bench_world`] at an arbitrary concept count (see
/// [`scaled_world_and_corpus`] for how satellite populations scale).
pub fn scaled_relaxation_bench_world(concepts: usize, shortcuts: bool) -> RelaxBenchWorld {
    let (world, corpus) = scaled_world_and_corpus(concepts);
    let counts = MentionCounts::count(&corpus, &world.terminology.ekg);
    let relax_config = RelaxConfig {
        mapping: MappingMethod::Exact,
        add_shortcuts: shortcuts,
        ..RelaxConfig::default()
    };
    let out = ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &relax_config)
        .expect("ingest");
    let queries: Vec<ExtConceptId> = world
        .terminology
        .of_hierarchy_below(Hierarchy::ClinicalFinding, 3)
        .into_iter()
        .filter(|c| out.flagged.contains(c))
        .take(32)
        .collect();
    let relaxer = QueryRelaxer::new(out, relax_config);
    let context = relaxer
        .ingested()
        .contexts
        .iter()
        .find(|s| s.label == "Indication-hasFinding-Finding")
        .expect("treatment context")
        .id;
    RelaxBenchWorld { relaxer, queries, context }
}
