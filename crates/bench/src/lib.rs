//! Experiment regeneration and benchmarking support.
//!
//! Binaries (one per published table/figure — see DESIGN.md §4):
//!
//! * `table1` — mapping-method accuracy (paper Table 1),
//! * `table2` — relaxation effectiveness (paper Table 2),
//! * `table3` — simulated user study (paper Table 3),
//! * `figures` — the worked numbers of Figures 4, 5 and 6,
//! * `ablation` — the design-choice ablations of DESIGN.md §5.
//!
//! Criterion benches (`benches/`): ingestion scaling, online relaxation
//! latency (the §5 complexity claims), mapping-method throughput, and
//! substrate micro-benchmarks.

#![warn(missing_docs)]

use medkb_eval::pipeline::{EvalConfig, EvalStack};

/// The seed all experiment binaries share (results are deterministic).
pub const EXPERIMENT_SEED: u64 = 2020;

/// Build the paper-scale stack used by the table binaries, caching the
/// embedding models under `target/medkb-cache` so repeated table runs skip
/// the training step.
pub fn paper_stack() -> EvalStack {
    let cache = std::path::Path::new("target/medkb-cache");
    EvalStack::build_cached(EvalConfig::paper(EXPERIMENT_SEED), cache).expect("stack builds")
}

/// Build a reduced stack for quick runs (`--quick` flag of the binaries).
pub fn quick_stack() -> EvalStack {
    EvalStack::build(EvalConfig::tiny(EXPERIMENT_SEED)).expect("stack builds")
}

/// Parse the common `--quick` flag.
pub fn stack_from_args() -> EvalStack {
    if std::env::args().any(|a| a == "--quick") {
        eprintln!("[medkb-bench] --quick: reduced world (shapes only)");
        quick_stack()
    } else {
        eprintln!("[medkb-bench] building paper-scale stack (seed {EXPERIMENT_SEED})…");
        paper_stack()
    }
}
