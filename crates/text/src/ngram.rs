//! Character n-gram inverted index for bounded edit-distance candidate
//! generation.
//!
//! A τ-bounded matcher over an external knowledge source with |V| concept
//! names cannot afford |V| banded DP runs per lookup. The standard filter:
//! two strings within Levenshtein distance τ share at least
//! `max(|a|, |b|) - (n-1) - τ·n` character n-grams (each edit destroys at
//! most `n` grams). The index retrieves candidates by shared-gram counting
//! and the caller verifies with the banded DP.

use std::collections::HashMap;

/// Padded character n-gram inverted index over a set of strings.
///
/// Entries are referenced by the dense `usize` position in insertion order;
/// callers keep their own side table mapping positions to domain ids.
#[derive(Debug, Clone)]
pub struct NgramIndex {
    n: usize,
    /// gram -> postings (entry positions, ascending).
    postings: HashMap<Box<str>, Vec<u32>>,
    /// Character length of each indexed entry.
    lengths: Vec<u32>,
    /// length -> entry positions; fallback for lengths where the gram-count
    /// bound degenerates (short strings can match while sharing zero grams).
    by_length: HashMap<u32, Vec<u32>>,
}

impl NgramIndex {
    /// An empty index over `n`-grams (`n >= 2` recommended; `n = 3` default
    /// choice for medical names).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "n-gram size must be at least 1");
        Self { n, postings: HashMap::new(), lengths: Vec::new(), by_length: HashMap::new() }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.lengths.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.lengths.is_empty()
    }

    /// Gram size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add `s`, returning its position.
    pub fn insert(&mut self, s: &str) -> usize {
        let pos = self.lengths.len();
        let len = s.chars().count() as u32;
        self.lengths.push(len);
        self.by_length.entry(len).or_default().push(pos as u32);
        for gram in Self::grams(self.n, s) {
            self.postings.entry(gram.into()).or_default().push(pos as u32);
        }
        pos
    }

    /// Positions of entries that could be within Levenshtein distance
    /// `max_dist` of `query`, by the count filter. Guaranteed to be a
    /// superset of the true matches among indexed entries (no false
    /// negatives); the caller verifies each candidate.
    pub fn candidates(&self, query: &str, max_dist: usize) -> Vec<usize> {
        let qlen = query.chars().count();
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for gram in Self::grams(self.n, query) {
            if let Some(posting) = self.postings.get(gram.as_str()) {
                for &pos in posting {
                    *counts.entry(pos).or_insert(0) += 1;
                }
            }
        }
        // Each edit destroys at most `n` padded grams, and a string of
        // length L has L + n - 1 padded grams, so a true match of length L
        // shares at least `bound(L) = max(L, qlen) + n - 1 - n·max_dist`
        // grams with the query.
        let bound = |len: usize| (len.max(qlen) + self.n - 1).saturating_sub(self.n * max_dist);
        let mut out: Vec<usize> = counts
            .into_iter()
            .filter(|&(pos, shared)| {
                let len = self.lengths[pos as usize] as usize;
                len.abs_diff(qlen) <= max_dist && (shared as usize) >= bound(len).max(1)
            })
            .map(|(pos, _)| pos as usize)
            .collect();
        // Lengths whose bound degenerates to zero cannot be filtered by
        // shared-gram counting at all: include every entry of such lengths.
        for len in qlen.saturating_sub(max_dist)..=qlen + max_dist {
            if bound(len) == 0 {
                if let Some(bucket) = self.by_length.get(&(len as u32)) {
                    out.extend(bucket.iter().map(|&p| p as usize));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The padded n-grams of `s` (padding char `\u{1}`): a string of k chars
    /// yields `k + n - 1` grams, so even 1-char strings are indexable.
    fn grams(n: usize, s: &str) -> Vec<String> {
        let pad = "\u{1}".repeat(n - 1);
        let padded: Vec<char> = format!("{pad}{s}{pad}").chars().collect();
        if padded.len() < n {
            return vec![padded.into_iter().collect()];
        }
        padded.windows(n).map(|w| w.iter().collect()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::levenshtein;
    use proptest::prelude::*;

    fn build(words: &[&str]) -> NgramIndex {
        let mut idx = NgramIndex::new(3);
        for w in words {
            idx.insert(w);
        }
        idx
    }

    #[test]
    fn exact_string_is_candidate() {
        let idx = build(&["fever", "headache", "asthma"]);
        assert!(idx.candidates("fever", 0).contains(&0));
    }

    #[test]
    fn near_match_is_candidate() {
        let idx = build(&["bronchitis", "pertussis"]);
        let cands = idx.candidates("bronchitiss", 2);
        assert!(cands.contains(&0));
    }

    #[test]
    fn far_string_is_filtered() {
        let idx = build(&["bronchitis"]);
        assert!(idx.candidates("hypothermia", 2).is_empty());
    }

    #[test]
    fn length_filter_applies() {
        let idx = build(&["flu"]);
        // Length difference 5 > max_dist 2 — cannot match.
        assert!(idx.candidates("influenza", 2).is_empty());
    }

    #[test]
    fn single_char_entries_indexable() {
        let mut idx = NgramIndex::new(3);
        idx.insert("a");
        assert!(idx.candidates("a", 0).contains(&0));
        assert!(idx.candidates("ab", 1).contains(&0));
    }

    proptest! {
        /// The filter must never drop a true match (no false negatives).
        #[test]
        fn prop_no_false_negatives(
            words in proptest::collection::vec("[a-d]{1,8}", 1..24),
            query in "[a-d]{1,8}",
            max in 0usize..3,
        ) {
            let mut idx = NgramIndex::new(3);
            for w in &words {
                idx.insert(w);
            }
            let cands: std::collections::HashSet<usize> =
                idx.candidates(&query, max).into_iter().collect();
            for (pos, w) in words.iter().enumerate() {
                if levenshtein(w, &query) <= max {
                    prop_assert!(
                        cands.contains(&pos),
                        "missed {w:?} for query {query:?} (max={max})"
                    );
                }
            }
        }
    }
}
