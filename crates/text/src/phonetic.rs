//! Phonetic encoding (Soundex) for sound-alike matching.
//!
//! Medical terms are frequently misspelled *phonetically*
//! ("neumonia" / "pneumonia", "difteria" / "diphtheria") — errors edit
//! distance treats as far. Classic Soundex collapses sound-alike
//! consonants into digit classes; a phrase key is the concatenation of its
//! words' codes. The repository uses it as a fourth, extra mapping method
//! ablated alongside the paper's three.

/// The classic 4-character Soundex code of a single word (empty input or
/// input without letters yields an empty string).
///
/// ```
/// use medkb_text::phonetic::soundex;
/// assert_eq!(soundex("Robert"), "R163");
/// assert_eq!(soundex("Rupert"), "R163");
/// assert_eq!(soundex("diarrhea"), soundex("diarrea"));
/// ```
pub fn soundex(word: &str) -> String {
    let letters: Vec<char> = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let Some(&first) = letters.first() else {
        return String::new();
    };
    let class = |c: char| -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => 1,
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
            'D' | 'T' => 3,
            'L' => 4,
            'M' | 'N' => 5,
            'R' => 6,
            'H' | 'W' => 7, // separator-transparent per the standard rules
            _ => 0,         // vowels and Y reset the run
        }
    };
    let mut code = String::new();
    code.push(first);
    let mut last = class(first);
    for &c in &letters[1..] {
        let k = class(c);
        match k {
            0 => last = 0,
            7 => {} // H/W do not encode and do not break a run
            _ => {
                if k != last {
                    code.push(char::from(b'0' + k));
                    if code.len() == 4 {
                        return code;
                    }
                }
                last = k;
            }
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    code
}

/// Phonetic key of a multi-word phrase: the space-joined Soundex codes of
/// its (normalized) words.
pub fn phrase_key(phrase: &str) -> String {
    crate::token::tokenize(phrase)
        .iter()
        .map(|w| soundex(w))
        .filter(|k| !k.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn textbook_examples() {
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Ashcroft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Pfister"), "P236");
    }

    #[test]
    fn medical_misspellings_collide_as_intended() {
        assert_eq!(soundex("diarrhea"), soundex("diarrea"));
        assert_eq!(soundex("hemorrhage"), soundex("hemorage"));
        assert_eq!(soundex("smith"), soundex("smyth"));
        assert_eq!(soundex("catarrh"), soundex("catar"));
    }

    #[test]
    fn empty_and_nonalpha() {
        assert_eq!(soundex(""), "");
        assert_eq!(soundex("123"), "");
        assert_eq!(soundex("a"), "A000");
    }

    #[test]
    fn phrase_keys() {
        assert_eq!(phrase_key("kidney disease"), format!("{} {}", soundex("kidney"), soundex("disease")));
        assert_eq!(phrase_key("Kidney  DISEASE!"), phrase_key("kidney disease"));
        assert_eq!(phrase_key(""), "");
    }

    proptest! {
        #[test]
        fn prop_code_shape(word in "[a-zA-Z]{1,16}") {
            let code = soundex(&word);
            prop_assert_eq!(code.len(), 4);
            let mut chars = code.chars();
            prop_assert!(chars.next().unwrap().is_ascii_uppercase());
            prop_assert!(chars.all(|c| c.is_ascii_digit()));
        }

        #[test]
        fn prop_case_insensitive(word in "[a-zA-Z]{1,12}") {
            prop_assert_eq!(soundex(&word), soundex(&word.to_uppercase()));
        }
    }
}
