//! Word tokenization shared by the corpus, embedding, and NLI crates.

/// Split a string into lowercase word tokens.
///
/// Tokens are maximal runs of alphanumeric characters; everything else is a
/// separator. This is intentionally the same segmentation as
/// [`crate::normalize`], so a normalized name is exactly the space-join of
/// its tokens.
///
/// ```
/// use medkb_text::tokenize;
/// assert_eq!(tokenize("What drugs treat psychogenic fever?"),
///            vec!["what", "drugs", "treat", "psychogenic", "fever"]);
/// ```
pub fn tokenize(s: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            // Keep only alphanumeric expansion chars, mirroring
            // `crate::normalize` (see the `İ` note there) so the
            // tokens-join-to-normalized invariant holds.
            for lower in ch.to_lowercase().filter(|c| c.is_alphanumeric()) {
                cur.push(lower);
            }
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Iterate over the (byte-offset, token) pairs of `s` without allocating the
/// token strings. Offsets refer to the original string, which lets callers
/// map matches back to spans.
pub fn token_spans(s: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start: Option<usize> = None;
    for (i, ch) in s.char_indices() {
        if ch.is_alphanumeric() {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(b) = start.take() {
            spans.push((b, i));
        }
    }
    if let Some(b) = start {
        spans.push((b, s.len()));
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_sentence() {
        assert_eq!(tokenize("Aspirin treats fever."), vec!["aspirin", "treats", "fever"]);
    }

    #[test]
    fn empty_and_punct() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!--").is_empty());
    }

    #[test]
    fn digits_are_tokens() {
        assert_eq!(tokenize("stage 1 ckd"), vec!["stage", "1", "ckd"]);
    }

    #[test]
    fn multichar_lowercase_expansion_matches_normalize() {
        // Mirrors the `İ` idempotence fix in normalize.
        assert_eq!(tokenize("İstanbul"), vec!["istanbul"]);
        assert_eq!(tokenize("İstanbul").join(" "), crate::normalize("İstanbul"));
    }

    #[test]
    fn spans_match_source() {
        let s = "Pain (in throat)";
        let spans = token_spans(s);
        let words: Vec<&str> = spans.iter().map(|&(a, b)| &s[a..b]).collect();
        assert_eq!(words, vec!["Pain", "in", "throat"]);
    }

    #[test]
    fn trailing_token_span() {
        let s = "renal impairment";
        let spans = token_spans(s);
        assert_eq!(spans.last().map(|&(a, b)| &s[a..b]), Some("impairment"));
    }

    proptest! {
        #[test]
        fn prop_tokens_join_to_normalized(s in ".{0,48}") {
            let joined = tokenize(&s).join(" ");
            prop_assert_eq!(joined, crate::normalize(&s));
        }

        #[test]
        fn prop_span_count_matches_token_count(s in ".{0,48}") {
            prop_assert_eq!(token_spans(&s).len(), tokenize(&s).len());
        }
    }
}
