//! Longest-match phrase spotting over a token trie.
//!
//! The conversational system (§6.1) extracts entity mentions from the user
//! utterance before deciding whether they resolve in the KB. Mentions are
//! multi-word ("pain in throat", "chronic kidney disease stage 1 due to
//! hypertension"), so extraction is a greedy longest-match walk over a trie
//! keyed by normalized tokens.

use std::collections::HashMap;

use crate::token::tokenize;

/// A phrase matched in an input utterance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhraseMatch {
    /// Index of the first matched token in the tokenized input.
    pub start_token: usize,
    /// Number of matched tokens.
    pub len: usize,
    /// Payload registered with the phrase.
    pub payload: u32,
}

#[derive(Debug, Clone, Default)]
struct TrieNode {
    children: HashMap<Box<str>, usize>,
    /// Payload if a registered phrase ends at this node.
    terminal: Option<u32>,
}

/// Token-trie gazetteer with greedy longest-match scanning.
///
/// ```
/// use medkb_text::Gazetteer;
///
/// let mut g = Gazetteer::new();
/// g.insert("pain in throat", 1);
/// g.insert("pain", 2);
/// let matches = g.scan("severe pain in throat today");
/// assert_eq!(matches.len(), 1);
/// assert_eq!(matches[0].payload, 1); // longest match wins
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gazetteer {
    nodes: Vec<TrieNode>,
    phrases: usize,
}

impl Gazetteer {
    /// An empty gazetteer.
    pub fn new() -> Self {
        Self { nodes: vec![TrieNode::default()], phrases: 0 }
    }

    /// Number of registered phrases.
    pub fn len(&self) -> usize {
        self.phrases
    }

    /// Whether no phrase has been registered.
    pub fn is_empty(&self) -> bool {
        self.phrases == 0
    }

    /// Register `phrase` (normalized internally) with `payload`.
    ///
    /// Re-inserting a phrase overwrites its payload. Empty phrases (no
    /// alphanumeric tokens) are ignored.
    pub fn insert(&mut self, phrase: &str, payload: u32) {
        let tokens = tokenize(phrase);
        if tokens.is_empty() {
            return;
        }
        let mut node = 0usize;
        for tok in &tokens {
            let next = match self.nodes[node].children.get(tok.as_str()) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(TrieNode::default());
                    self.nodes[node].children.insert(tok.clone().into_boxed_str(), n);
                    n
                }
            };
            node = next;
        }
        if self.nodes[node].terminal.replace(payload).is_none() {
            self.phrases += 1;
        }
    }

    /// Exact lookup of a whole phrase.
    pub fn lookup(&self, phrase: &str) -> Option<u32> {
        let tokens = tokenize(phrase);
        if tokens.is_empty() {
            return None;
        }
        let mut node = 0usize;
        for tok in &tokens {
            node = *self.nodes[node].children.get(tok.as_str())?;
        }
        self.nodes[node].terminal
    }

    /// Scan an utterance, returning non-overlapping greedy longest matches
    /// left to right.
    pub fn scan(&self, utterance: &str) -> Vec<PhraseMatch> {
        let tokens = tokenize(utterance);
        self.scan_tokens(&tokens)
    }

    /// [`Self::scan`] over pre-tokenized input.
    pub fn scan_tokens(&self, tokens: &[String]) -> Vec<PhraseMatch> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut node = 0usize;
            let mut best: Option<(usize, u32)> = None; // (len, payload)
            for (offset, tok) in tokens[i..].iter().enumerate() {
                match self.nodes[node].children.get(tok.as_str()) {
                    Some(&n) => {
                        node = n;
                        if let Some(p) = self.nodes[node].terminal {
                            best = Some((offset + 1, p));
                        }
                    }
                    None => break,
                }
            }
            match best {
                Some((len, payload)) => {
                    out.push(PhraseMatch { start_token: i, len, payload });
                    i += len;
                }
                None => i += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_word_match() {
        let mut g = Gazetteer::new();
        g.insert("fever", 7);
        let m = g.scan("does aspirin treat fever");
        assert_eq!(m, vec![PhraseMatch { start_token: 3, len: 1, payload: 7 }]);
    }

    #[test]
    fn longest_match_preferred() {
        let mut g = Gazetteer::new();
        g.insert("kidney", 1);
        g.insert("kidney disease", 2);
        let m = g.scan("chronic kidney disease");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].payload, 2);
        assert_eq!(m[0].len, 2);
    }

    #[test]
    fn multiple_non_overlapping_matches() {
        let mut g = Gazetteer::new();
        g.insert("aspirin", 1);
        g.insert("fever", 2);
        let m = g.scan("aspirin for fever");
        assert_eq!(m.iter().map(|p| p.payload).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn normalization_applies_to_phrases_and_input() {
        let mut g = Gazetteer::new();
        g.insert("Pain (in throat)", 9);
        assert_eq!(g.lookup("pain in throat"), Some(9));
        assert_eq!(g.scan("PAIN, IN-THROAT").len(), 1);
    }

    #[test]
    fn reinsert_overwrites_payload() {
        let mut g = Gazetteer::new();
        g.insert("fever", 1);
        g.insert("fever", 2);
        assert_eq!(g.len(), 1);
        assert_eq!(g.lookup("fever"), Some(2));
    }

    #[test]
    fn empty_phrase_ignored() {
        let mut g = Gazetteer::new();
        g.insert("  --  ", 1);
        assert!(g.is_empty());
    }

    #[test]
    fn prefix_without_terminal_does_not_match() {
        let mut g = Gazetteer::new();
        g.insert("chronic kidney disease", 3);
        assert!(g.scan("chronic kidney failure").is_empty());
        assert_eq!(g.lookup("chronic kidney"), None);
    }

    proptest! {
        #[test]
        fn prop_every_inserted_phrase_lookups(
            phrases in proptest::collection::hash_set("[a-c]{1,4}( [a-c]{1,4}){0,2}", 1..16)
        ) {
            let mut g = Gazetteer::new();
            for (i, p) in phrases.iter().enumerate() {
                g.insert(p, i as u32);
            }
            for (i, p) in phrases.iter().enumerate() {
                prop_assert_eq!(g.lookup(p), Some(i as u32));
            }
        }

        #[test]
        fn prop_matches_never_overlap(
            phrases in proptest::collection::vec("[a-b]{1,2}( [a-b]{1,2}){0,2}", 1..8),
            text in "[a-b ]{0,32}",
        ) {
            let mut g = Gazetteer::new();
            for (i, p) in phrases.iter().enumerate() {
                g.insert(p, i as u32);
            }
            let matches = g.scan(&text);
            for w in matches.windows(2) {
                prop_assert!(w[0].start_token + w[0].len <= w[1].start_token);
            }
        }
    }
}
