//! Text processing substrate: normalization, tokenization, approximate
//! string matching, and phrase spotting.
//!
//! The paper's offline ingestion and online relaxation both need to map
//! names — KB instance names and user query terms — onto external concept
//! names (§3, §5.1). Three pluggable matchers are evaluated in Table 1:
//! exact matching, approximate matching under an edit-distance threshold
//! `τ = 2`, and embedding matching. This crate supplies the first two plus
//! the shared plumbing (the embedding matcher lives in `medkb-embed`):
//!
//! * [`normalize`] — the canonical form every matcher compares in.
//! * [`edit`] — banded Levenshtein / Damerau-Levenshtein distances.
//! * [`ngram`] — a character-trigram inverted index so that τ-bounded
//!   matching over hundreds of thousands of concept names does not require
//!   a full scan.
//! * [`token`] — the whitespace/punctuation word tokenizer shared with the
//!   corpus and NLI crates.
//! * [`gazetteer`] — longest-match multi-word phrase spotting over a token
//!   trie, used by the conversational system's entity extraction.

#![warn(missing_docs)]

pub mod edit;
pub mod gazetteer;
pub mod ngram;
pub mod normalize;
pub mod phonetic;
pub mod token;

pub use edit::{damerau_levenshtein, levenshtein, levenshtein_within};
pub use gazetteer::{Gazetteer, PhraseMatch};
pub use ngram::NgramIndex;
pub use normalize::normalize;
pub use phonetic::{phrase_key, soundex};
pub use token::{token_spans, tokenize};
