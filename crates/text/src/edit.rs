//! Edit distances for approximate name matching.
//!
//! Table 1's `EDIT` matcher accepts a mapping when the Levenshtein distance
//! between the (normalized) instance name and an external concept name is at
//! most `τ = 2`. The hot path therefore needs a *bounded* distance test, not
//! the full O(m·n) matrix: [`levenshtein_within`] runs the banded dynamic
//! program that visits only the `2τ+1` diagonal band and exits early once the
//! whole band exceeds the threshold.

/// Classic Levenshtein distance (insert / delete / substitute, unit costs).
///
/// Runs the two-row dynamic program in O(m·n) time and O(min(m,n)) space.
///
/// ```
/// use medkb_text::levenshtein;
/// assert_eq!(levenshtein("fever", "fever"), 0);
/// assert_eq!(levenshtein("fever", "fevers"), 1);
/// assert_eq!(levenshtein("hyperpyrexia", "hypothermia"), 6);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (short, long): (Vec<char>, Vec<char>) = {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        if ac.len() <= bc.len() {
            (ac, bc)
        } else {
            (bc, ac)
        }
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Damerau-Levenshtein distance (adds adjacent transposition, unit cost).
///
/// Used as an alternative matcher configuration; medical misspellings are
/// frequently transpositions (`"psoriasis"` / `"psoraisis"`).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let (m, n) = (ac.len(), bc.len());
    if m == 0 {
        return n;
    }
    if n == 0 {
        return m;
    }
    // Three rolling rows: i-2, i-1, i.
    let mut row2: Vec<usize> = vec![0; n + 1];
    let mut row1: Vec<usize> = (0..=n).collect();
    let mut row0: Vec<usize> = vec![0; n + 1];
    for i in 1..=m {
        row0[0] = i;
        for j in 1..=n {
            let cost = usize::from(ac[i - 1] != bc[j - 1]);
            let mut best = (row1[j - 1] + cost).min(row1[j] + 1).min(row0[j - 1] + 1);
            if i > 1 && j > 1 && ac[i - 1] == bc[j - 2] && ac[i - 2] == bc[j - 1] {
                best = best.min(row2[j - 2] + 1);
            }
            row0[j] = best;
        }
        std::mem::swap(&mut row2, &mut row1);
        std::mem::swap(&mut row1, &mut row0);
    }
    row1[n]
}

/// Bounded Levenshtein: `Some(d)` if `d = levenshtein(a, b) <= max`, else
/// `None`, computed in O(max·min(m,n)) via the diagonal band.
///
/// ```
/// use medkb_text::levenshtein_within;
/// assert_eq!(levenshtein_within("asthma", "astma", 2), Some(1));
/// assert_eq!(levenshtein_within("asthma", "bronchitis", 2), None);
/// ```
pub fn levenshtein_within(a: &str, b: &str, max: usize) -> Option<usize> {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let (short, long) = if ac.len() <= bc.len() { (&ac, &bc) } else { (&bc, &ac) };
    let (m, n) = (short.len(), long.len());
    if n - m > max {
        return None;
    }
    if m == 0 {
        return (n <= max).then_some(n);
    }
    const BIG: usize = usize::MAX / 2;
    // prev[j] holds distance for row i-1; only a band of width 2·max+1
    // around the main diagonal is ever finite.
    let mut prev: Vec<usize> = (0..=m).map(|j| if j <= max { j } else { BIG }).collect();
    let mut cur = vec![BIG; m + 1];
    for i in 1..=n {
        let lo = i.saturating_sub(max).max(1);
        let hi = (i + max).min(m);
        if lo > hi {
            return None;
        }
        cur[lo - 1] = if lo == 1 { i } else { BIG };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let sub = prev[j - 1] + usize::from(long[i - 1] != short[j - 1]);
            let del = if prev[j] < BIG { prev[j] + 1 } else { BIG };
            let ins = if cur[j - 1] < BIG { cur[j - 1] + 1 } else { BIG };
            cur[j] = sub.min(del).min(ins);
            row_min = row_min.min(cur[j]);
        }
        if hi < m {
            cur[hi + 1..].fill(BIG);
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (prev[m] <= max).then_some(prev[m])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_is_zero() {
        assert_eq!(levenshtein("pertussis", "pertussis"), 0);
        assert_eq!(damerau_levenshtein("pertussis", "pertussis"), 0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(levenshtein_within("", "", 0), Some(0));
        assert_eq!(levenshtein_within("", "ab", 1), None);
    }

    #[test]
    fn length_prefilter_counts_chars_not_bytes() {
        // "naïve" is 5 chars but 6 bytes; a byte-based length gap would
        // wrongly prune the pair at max = 1 ("naïves" is 7 bytes, gap 1
        // either way here, so also pin a case where the byte gap exceeds
        // max while the char gap does not).
        assert_eq!(levenshtein_within("naïve", "naïves", 1), Some(1));
        // µµ (4 bytes, 2 chars) vs "abc" (3 bytes, 3 chars): char gap 1.
        assert_eq!(levenshtein_within("µµ", "abc", 3), Some(3));
        // Byte lengths: "µµµµ" = 8, "" = 0 → byte gap 8 > 4 would prune;
        // char gap is 4, and the distance really is 4.
        assert_eq!(levenshtein_within("µµµµ", "", 4), Some(4));
        assert_eq!(levenshtein("naïve", "naive"), 1);
        assert_eq!(damerau_levenshtein("µg", "gµ"), 1);
    }

    #[test]
    fn single_edits() {
        assert_eq!(levenshtein("fever", "feber"), 1); // substitution
        assert_eq!(levenshtein("fever", "fevr"), 1); // deletion
        assert_eq!(levenshtein("fever", "feverr"), 1); // insertion
    }

    #[test]
    fn transposition_counts() {
        // Plain Levenshtein needs 2 edits, Damerau needs 1.
        assert_eq!(levenshtein("ab", "ba"), 2);
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("psoriasis", "psoraisis"), 1);
    }

    #[test]
    fn bounded_matches_full_inside_threshold() {
        assert_eq!(levenshtein_within("bronchitis", "bronchitis", 0), Some(0));
        assert_eq!(levenshtein_within("headache", "headaches", 2), Some(1));
        assert_eq!(levenshtein_within("headache", "headace", 2), Some(1));
        assert_eq!(levenshtein_within("headache", "hadacke", 2), Some(2));
    }

    #[test]
    fn bounded_rejects_beyond_threshold() {
        assert_eq!(levenshtein("headache", "backache"), 4);
        assert_eq!(levenshtein_within("headache", "backache", 2), None);
        assert_eq!(levenshtein_within("headache", "toothache", 2), None);
    }

    #[test]
    fn unicode_chars_handled_per_char() {
        assert_eq!(levenshtein("naïve", "naive"), 1);
        assert_eq!(levenshtein_within("naïve", "naive", 2), Some(1));
    }

    proptest! {
        #[test]
        fn prop_symmetry(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        }

        #[test]
        fn prop_triangle_inequality(
            a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}"
        ) {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn prop_bounded_agrees_with_full(a in "[a-d]{0,10}", b in "[a-d]{0,10}", max in 0usize..5) {
            let full = levenshtein(&a, &b);
            match levenshtein_within(&a, &b, max) {
                Some(d) => {
                    prop_assert_eq!(d, full);
                    prop_assert!(d <= max);
                }
                None => prop_assert!(full > max),
            }
        }

        #[test]
        fn prop_damerau_not_larger_than_levenshtein(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        #[test]
        fn prop_distance_bounds(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
            let d = levenshtein(&a, &b);
            let (la, lb) = (a.chars().count(), b.chars().count());
            prop_assert!(d >= la.abs_diff(lb));
            prop_assert!(d <= la.max(lb));
        }
    }
}
