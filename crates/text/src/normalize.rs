//! Canonical string form used by every matcher.

/// Normalize a name or query term to its canonical comparison form.
///
/// Lowercases, maps any punctuation to spaces, collapses whitespace runs,
/// and trims. Digits are kept: SNOMED-style names such as
/// `"chronic kidney disease stage 1"` are distinguished by them.
///
/// ```
/// use medkb_text::normalize;
///
/// assert_eq!(normalize("  Renal  Impairment "), "renal impairment");
/// assert_eq!(normalize("Pain (in throat)"), "pain in throat");
/// assert_eq!(normalize("CKD, stage-1"), "ckd stage 1");
/// ```
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_space = false;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            if ch.is_ascii() {
                out.push(ch.to_ascii_lowercase());
            } else {
                // `to_lowercase` can expand to several chars, and the extras
                // are not always alphanumeric: `İ` (U+0130) lowers to
                // `i` + combining-dot-above, and a second normalize pass
                // would then drop the mark. Keeping only alphanumeric
                // expansion chars makes the function idempotent.
                for lower in ch.to_lowercase().filter(|c| c.is_alphanumeric()) {
                    out.push(lower);
                }
            }
        } else {
            // Whitespace and punctuation both act as (collapsed) separators.
            pending_space = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lowercases() {
        assert_eq!(normalize("ASPIRIN"), "aspirin");
    }

    #[test]
    fn collapses_internal_whitespace() {
        assert_eq!(normalize("kidney   \t disease"), "kidney disease");
    }

    #[test]
    fn punctuation_becomes_separator() {
        assert_eq!(normalize("drug-induced fever"), "drug induced fever");
        assert_eq!(normalize("fever, chronic"), "fever chronic");
    }

    #[test]
    fn empty_and_punct_only() {
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("---"), "");
    }

    #[test]
    fn digits_survive() {
        assert_eq!(normalize("Stage 1 CKD"), "stage 1 ckd");
    }

    #[test]
    fn multibyte_letters_survive() {
        assert_eq!(normalize("naïve BAYES"), "naïve bayes");
        assert_eq!(normalize("5 µg dose"), "5 µg dose");
    }

    #[test]
    fn idempotent_on_multichar_lowercase_expansions() {
        // `İ` (U+0130) lowers to `i` + U+0307 combining dot above; the
        // combining mark is not alphanumeric, so keeping it would make a
        // second normalize pass produce a different string.
        let once = normalize("İstanbul");
        assert_eq!(once, "istanbul");
        assert_eq!(normalize(&once), once);
    }

    proptest! {
        #[test]
        fn prop_idempotent(s in ".{0,64}") {
            let once = normalize(&s);
            prop_assert_eq!(normalize(&once), once);
        }

        #[test]
        fn prop_no_double_spaces_or_edges(s in ".{0,64}") {
            let n = normalize(&s);
            prop_assert!(!n.contains("  "));
            prop_assert!(!n.starts_with(' '));
            prop_assert!(!n.ends_with(' '));
        }
    }
}
