//! `medkb-cli` — explore the relaxation system from a terminal.
//!
//! ```text
//! medkb-cli demo                         # quickstart on the paper fragment
//! medkb-cli relax <term> [k]            # one-shot relaxation on a generated world
//! medkb-cli chat [--no-qr]              # interactive conversation (stdin)
//! medkb-cli gen <concepts> <out-dir>    # generate + save an RF2-style terminology
//! medkb-cli serve [--addr A] [--addr-file F]  # HTTP/1.1 front end on a world
//! medkb-cli http <addr> <METHOD> <path> [body]  # one-shot std TcpStream client
//! ```

use std::collections::HashMap;
use std::io::{BufRead, Write as _};
use std::sync::Arc;

use medkb::eval::pipeline::{EvalConfig, EvalStack};
use medkb::nli::trainset::generate_training_queries;
use medkb::prelude::*;
use medkb::serve::{HttpConfig, HttpServer};
use medkb::snomed::{rf2, GeneratedTerminology};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("demo") => demo(),
        Some("relax") => relax(&args[1..]),
        Some("chat") => chat(&args[1..]),
        Some("gen") => gen(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("http") => http_request(&args[1..]),
        _ => {
            eprintln!(
                "usage: medkb-cli <demo | relax <term> [k] | chat [--no-qr] | \
                 gen <concepts> <out-dir> | serve [--addr A] [--addr-file F] | \
                 http <addr> <METHOD> <path> [body]>"
            );
            2
        }
    };
    std::process::exit(code);
}

fn demo() -> i32 {
    let fragment = medkb::snomed::figures::paper_fragment();
    let mut ob = OntologyBuilder::new();
    let drug = ob.concept("Drug");
    let indication = ob.concept("Indication");
    let finding = ob.concept("Finding");
    ob.relationship("treat", drug, indication);
    ob.relationship("hasFinding", indication, finding);
    let mut kb = KbBuilder::new(ob.build().expect("static ontology"));
    let fc = kb.ontology().lookup_concept("Finding").unwrap();
    for name in &fragment.flagged {
        kb.instance(name, fc);
    }
    let kb = kb.build().expect("static KB");
    let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 1);
    let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
    let ingested = ingest(&kb, fragment.ekg.clone(), &counts, None, &config).expect("ingest");
    let relaxer = QueryRelaxer::new(ingested, config);
    for term in ["pyelectasia", "pertussis", "psychogenic fever"] {
        println!("relax({term}):");
        match relaxer.relax(term, None, 4) {
            Ok(res) => {
                for a in res.answers {
                    println!("  {:.3}  {}", a.score, relaxer.ingested().ekg.name(a.concept));
                }
            }
            Err(e) => println!("  error: {e}"),
        }
    }
    0
}

fn build_stack(seed: u64) -> EvalStack {
    eprintln!("generating world (seed {seed})…");
    EvalStack::build(EvalConfig::tiny(seed)).expect("stack builds")
}

fn relax(args: &[String]) -> i32 {
    let Some(term) = args.first() else {
        eprintln!("usage: medkb-cli relax <term> [k]");
        return 2;
    };
    let k: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let stack = build_stack(42);
    let relaxer = stack.relaxer(stack.config.relax.clone());
    let ctx = stack.world.treatment_context();
    match relaxer.relax(term, Some(ctx), k) {
        Ok(res) => {
            println!(
                "\"{term}\" → {:?} (radius {})",
                relaxer.ingested().ekg.name(res.query_concept),
                res.radius_used
            );
            for a in &res.answers {
                let names: Vec<&str> =
                    a.instances.iter().map(|&i| stack.world.kb.name(i)).collect();
                println!(
                    "  {:.3}  {}  [{}]",
                    a.score,
                    relaxer.ingested().ekg.name(a.concept),
                    names.join(", ")
                );
            }
            if let Some(top) = res.answers.first() {
                println!("\nwhy the top answer:");
                for line in relaxer.explain(res.query_concept, top.concept, Some(ctx)).lines() {
                    println!("  {line}");
                }
            }
            println!(
                "\n(tip: terminology names to try — {})",
                sample_terms(&stack).join(", ")
            );
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try one of: {}", sample_terms(&stack).join(", "));
            1
        }
    }
}

fn sample_terms(stack: &EvalStack) -> Vec<String> {
    stack
        .ingested
        .flagged
        .iter()
        .take(4)
        .map(|&c| stack.ingested.ekg.name(c).to_string())
        .collect()
}

fn chat(args: &[String]) -> i32 {
    let stack = build_stack(42);
    let queries = generate_training_queries(
        &stack.world.kb,
        &stack.world.contexts,
        |c| stack.world.tag_of(c),
        6,
        43,
    );
    let classifier = IntentClassifier::train(&queries);
    let extractor = EntityExtractor::build(&stack.world.kb);
    let relaxer = stack.relaxer(stack.config.relax.clone());
    let mut engine =
        ConversationEngine::new(stack.world.kb.clone(), relaxer, classifier, extractor);
    engine.use_relaxation = !args.iter().any(|a| a == "--no-qr");
    println!(
        "conversational medical KB ({}). Ask e.g. \"what drugs treat {}\". \
         Type 'exit' to quit.",
        if engine.use_relaxation { "with query relaxation" } else { "no relaxation" },
        sample_terms(&stack).first().cloned().unwrap_or_default()
    );
    let stdin = std::io::stdin();
    loop {
        print!("you> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "exit" || line == "quit" {
            break;
        }
        println!("bot> {}", engine.handle(line).text());
    }
    0
}

/// `serve`: stand up the std-only HTTP/1.1 front end (DESIGN.md §16) over a
/// generated world and run until stdin closes (interactive) or the process
/// is killed (scripts — tier1.sh backgrounds this and kills it).
///
/// With `--addr-file F` the bound address is written to `F` (first line),
/// followed by a few resolvable terminology terms — so a script using an
/// ephemeral port (`--addr 127.0.0.1:0`) can find both the port and a
/// valid `/relax` query without parsing human output.
fn serve(args: &[String]) -> i32 {
    let mut addr = "127.0.0.1:7464".to_string();
    let mut addr_file: Option<String> = None;
    let mut seed = 42u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v.clone(),
                None => return usage_serve(),
            },
            "--addr-file" => match it.next() {
                Some(v) => addr_file = Some(v.clone()),
                None => return usage_serve(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage_serve(),
            },
            _ => return usage_serve(),
        }
    }
    let stack = build_stack(seed);
    let registry = Registry::shared();
    let relax_cfg = RelaxConfig {
        obs: ObsConfig::with_registry(Arc::clone(&registry)),
        ..stack.config.relax.clone()
    };
    let server =
        Arc::new(RelaxServer::new(stack.ingested.clone(), relax_cfg, ServeConfig::default()));
    let http = match HttpServer::start(
        Arc::clone(&server),
        Some(registry),
        HttpConfig { addr, ..HttpConfig::default() },
    ) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return 1;
        }
    };
    let bound = http.addr();
    let terms = sample_terms(&stack);
    println!("listening on http://{bound} (epoch {})", server.epoch());
    println!("try: medkb-cli http {bound} GET /health");
    println!(
        "     medkb-cli http {bound} POST /relax '{{\"term\":\"{}\"}}'",
        terms.first().cloned().unwrap_or_default()
    );
    if let Some(f) = addr_file {
        let mut doc = bound.to_string();
        for t in &terms {
            doc.push('\n');
            doc.push_str(t);
        }
        doc.push('\n');
        if let Err(e) = std::fs::write(&f, doc) {
            eprintln!("cannot write --addr-file {f}: {e}");
            return 1;
        }
    }
    // Interactive stdin keeps serving until EOF (Ctrl-D); non-terminal
    // stdin (backgrounded under a script) would hit EOF instantly, so
    // there we park until killed.
    use std::io::IsTerminal;
    if std::io::stdin().is_terminal() {
        let mut line = String::new();
        while matches!(std::io::stdin().lock().read_line(&mut line), Ok(n) if n > 0) {
            line.clear();
        }
    } else {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    http.shutdown();
    0
}

fn usage_serve() -> i32 {
    eprintln!("usage: medkb-cli serve [--addr host:port] [--addr-file path] [--seed n]");
    2
}

/// `http`: the curl-equivalent std `TcpStream` client. One request, one
/// `connection: close` response, raw response printed to stdout; exit 0
/// iff the status is 2xx.
fn http_request(args: &[String]) -> i32 {
    let (Some(addr), Some(method), Some(path)) = (args.first(), args.get(1), args.get(2)) else {
        eprintln!("usage: medkb-cli http <addr> <METHOD> <path> [json-body]");
        return 2;
    };
    let body = args.get(3).map(String::as_str).unwrap_or("");
    use std::io::{Read as _, Write as _};
    let mut stream = match std::net::TcpStream::connect(addr.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return 1;
        }
    };
    let request = format!(
        "{method} {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    if let Err(e) = stream.write_all(request.as_bytes()) {
        eprintln!("write: {e}");
        return 1;
    }
    let mut response = Vec::new();
    if let Err(e) = stream.read_to_end(&mut response) {
        eprintln!("read: {e}");
        return 1;
    }
    let text = String::from_utf8_lossy(&response);
    print!("{text}");
    if !text.ends_with('\n') {
        println!();
    }
    let ok = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .is_some_and(|status| (200..300).contains(&status));
    i32::from(!ok)
}

fn gen(args: &[String]) -> i32 {
    let (Some(concepts), Some(out)) = (args.first(), args.get(1)) else {
        eprintln!("usage: medkb-cli gen <concepts> <out-dir>");
        return 2;
    };
    let Ok(n) = concepts.parse::<usize>() else {
        eprintln!("concepts must be a number");
        return 2;
    };
    let term = GeneratedTerminology::generate(&SnomedConfig {
        concepts: n,
        ..SnomedConfig::default()
    });
    println!("generated: {}", EkgStats::compute(&term.ekg));
    match rf2::save_dir(&term.ekg, std::path::Path::new(out)) {
        Ok(()) => {
            println!("saved concepts.tsv / relationships.tsv to {out}");
            0
        }
        Err(e) => {
            eprintln!("save failed: {e}");
            1
        }
    }
}
