//! # medkb — Expanding Query Answers on Medical Knowledge Bases
//!
//! A from-scratch Rust implementation of the EDBT 2020 paper
//! *Expanding Query Answers on Medical Knowledge Bases* (Lei, Efthymiou,
//! Geis, Özcan): context-aware, two-phase query relaxation over a medical
//! knowledge base backed by an external knowledge source (SNOMED CT in the
//! paper; a faithful synthetic terminology here, since SNOMED CT is
//! license-gated — see `DESIGN.md`).
//!
//! The workspace is layered (each layer is its own crate, re-exported
//! here):
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`types`] | `medkb-types` | ids, interning, errors |
//! | [`obs`] | `medkb-obs` | metrics registry, spans, snapshot JSON |
//! | [`text`] | `medkb-text` | normalization, edit distance, n-grams, gazetteer |
//! | [`ekg`] | `medkb-ekg` | the external knowledge source DAG |
//! | [`ontology`] | `medkb-ontology` | domain ontology (TBox) + contexts |
//! | [`kb`] | `medkb-kb` | instance store (ABox) + path queries |
//! | [`snomed`] | `medkb-snomed` | synthetic terminology, MED world, oracle |
//! | [`corpus`] | `medkb-corpus` | monograph corpus + mention counting |
//! | [`embed`] | `medkb-embed` | SGNS word vectors + SIF phrase embeddings |
//! | [`core`] | `medkb-core` | **the paper's method**: Algorithms 1 & 2, Eq. 1–5 |
//! | [`serve`] | `medkb-serve` | snapshot-swapped serving layer + result cache |
//! | [`nli`] | `medkb-nli` | conversational + NLQ interfaces (§6) |
//! | [`eval`] | `medkb-eval` | experiments: Tables 1–3 |
//!
//! ## Quickstart
//!
//! ```
//! use medkb::prelude::*;
//! use std::collections::HashMap;
//!
//! // The external knowledge source: the paper's own worked fragment.
//! let fragment = medkb::snomed::figures::paper_fragment();
//!
//! // A miniature medical KB whose instances map onto the fragment.
//! let mut ob = OntologyBuilder::new();
//! let drug = ob.concept("Drug");
//! let indication = ob.concept("Indication");
//! let finding = ob.concept("Finding");
//! ob.relationship("treat", drug, indication);
//! ob.relationship("hasFinding", indication, finding);
//! let ontology = ob.build()?;
//! let mut kb = KbBuilder::new(ontology);
//! let fc = kb.ontology().lookup_concept("Finding").unwrap();
//! for name in ["kidney disease", "nephropathy", "renal impairment", "fever"] {
//!     kb.instance(name, fc);
//! }
//! let kb = kb.build()?;
//!
//! // Offline phase (Algorithm 1), then online relaxation (Algorithm 2).
//! let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 1);
//! let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
//! let ingested = ingest(&kb, fragment.ekg.clone(), &counts, None, &config)?;
//! let relaxer = QueryRelaxer::new(ingested, config);
//!
//! // "pyelectasia" is not in the KB — relaxation finds what is.
//! let result = relaxer.relax("pyelectasia", None, 3)?;
//! let names: Vec<&str> = result
//!     .answers
//!     .iter()
//!     .map(|a| relaxer.ingested().ekg.name(a.concept))
//!     .collect();
//! assert!(names.contains(&"kidney disease") || names.contains(&"nephropathy"));
//! # Ok::<(), medkb::types::MedKbError>(())
//! ```

#![warn(missing_docs)]

pub use medkb_core as core;
pub use medkb_corpus as corpus;
pub use medkb_obs as obs;
pub use medkb_ekg as ekg;
pub use medkb_embed as embed;
pub use medkb_eval as eval;
pub use medkb_kb as kb;
pub use medkb_nli as nli;
pub use medkb_ontology as ontology;
pub use medkb_serve as serve;
pub use medkb_snomed as snomed;
pub use medkb_text as text;
pub use medkb_types as types;

/// The most frequently used items, re-exported flat.
pub mod prelude {
    pub use medkb_core::{
        ingest, outputs_identical, ConceptMapper, Delta, DeltaEngine, DeltaOp, FrequencyMode,
        Frequencies, IngestOutput, MappingMethod, ObsConfig, QueryRelaxer, RelaxConfig,
        RelaxationResult, RelaxedAnswer, ScoreExplain,
    };
    pub use medkb_obs::{MetricsSnapshot, Registry};
    pub use medkb_corpus::{Corpus, CorpusConfig, CorpusGenerator, MentionCounts};
    pub use medkb_ekg::{Ekg, EkgBuilder, EkgStats};
    pub use medkb_embed::{SgnsConfig, SifModel, WordVectors};
    pub use medkb_kb::{Kb, KbBuilder, PathQuery};
    pub use medkb_nli::{ConversationEngine, EntityExtractor, IntentClassifier, NlqEngine};
    pub use medkb_ontology::{Ontology, OntologyBuilder};
    pub use medkb_serve::{RelaxServer, ServeConfig, ServeResult, ServedFrom};
    pub use medkb_snomed::{ContextTag, MedWorld, Oracle, SnomedConfig, WorldConfig};
    pub use medkb_types::{
        ContextId, ExtConceptId, InstanceId, MedKbError, OntoConceptId, Result,
    };
}
