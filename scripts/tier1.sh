#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): release build + root test suite,
# plus smoke passes of both benchmark binaries. The smoke passes run the
# full staged-vs-reference and instrumented-vs-plain bit-identity asserts
# but (--quick) never rewrite the committed BENCH_*.json files.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# The conformance suites are part of the root test run above, but name them
# explicitly so a filtered/partial invocation can't silently skip them.
cargo test -q --test golden_traces --test obs_conformance

# Lint wall: warnings are errors across every target in the workspace.
cargo clippy --workspace --all-targets -- -D warnings

# Fuzz smoke: one adversarial world per DAG shape through the full
# differential oracle stack (~seconds). The exhaustive 240-world sweep
# lives in `cargo test -p medkb-fuzz --test differential` and runs out of
# band — this keeps tier-1 fast while still catching gross divergence.
cargo test -q -p medkb-fuzz smoke

# No test may be #[ignore]d without a tracking comment on the same line
# (e.g. `#[ignore] // tracked: <reason/issue>`). Silent skips rot.
if grep -rn '#\[ignore\]' --include='*.rs' tests/ crates/ src/ 2>/dev/null \
    | grep -v 'tracked:'; then
  echo "tier-1 FAIL: #[ignore] without a 'tracked:' comment (see above)" >&2
  exit 1
fi

# Ingest smoke: staged pipeline bit-identical to the reference, metrics
# snapshot valid JSON with every stage timer recorded exactly once.
cargo run --release -p medkb-bench --bin bench_json -- --ingest --quick >/dev/null

# The committed ingest baseline must gate on recorded *shape*, not speedup:
# thread counts are clamped to the bench box's cores, so the file has to say
# what was actually measured (threads_effective per row, the unclamped
# oversubscription sweep, and the core count it ran on).
for key in '"threads_effective"' '"oversubscribed"' '"machine_cores"' \
    '"world_concepts"'; do
  if ! grep -qF "$key" BENCH_ingest.json; then
    echo "tier-1 FAIL: BENCH_ingest.json missing $key" >&2
    exit 1
  fi
done

# Relax smoke: instrumented engine bit-identical to the plain engine, and
# the emitted document (including the embedded metrics snapshot) parses.
out=$(cargo run --release -p medkb-bench --bin bench_json -- --quick)
for key in '"metrics"' '"obs_overhead_pct"' 'relax.latency_us' 'relax.queries' \
    '"p99_us_per_query"' '"lcs_evals_saved_pct"' 'relax.lcs.bound_skips' \
    'relax.rings.terminated'; do
  if ! grep -qF "$key" <<<"$out"; then
    echo "tier-1 FAIL: bench_json --quick output missing $key" >&2
    exit 1
  fi
done
# Score-bounded pruning must actually save LCS evaluations on the default
# workload (DESIGN.md §13) — a silent fall-back to the exhaustive scan
# would keep every bit-identity assert green while losing the perf win.
saved=$(grep -o '"lcs_evals_saved_pct": [0-9.]*' <<<"$out" | grep -o '[0-9.]*$')
if ! awk -v s="${saved:-0}" 'BEGIN { exit !(s > 0) }'; then
  echo "tier-1 FAIL: lcs_evals_saved_pct is ${saved:-missing}, expected > 0" >&2
  exit 1
fi

# Serve smoke: snapshot-swapped serving layer over the same world. The
# binary itself asserts cached answers are bit-identical to uncached ones,
# that a snapshot swap retires the old epoch, and that load-shedding
# returns Overloaded (not NotFound); here we additionally require the
# emitted document to show real cache traffic (nonzero hits).
out=$(cargo run --release -p medkb-bench --bin bench_json -- --serve --quick)
for key in '"cold_p50_us"' '"warm_p50_us"' '"hit_ratio"' 'serve.cache.hits' \
    'serve.snapshot.swaps' '"uniform_loop_hit_ratio"' '"workloads"' \
    '"workload": "uniform"' '"workload": "zipf"'; do
  if ! grep -qF "$key" <<<"$out"; then
    echo "tier-1 FAIL: bench_json --serve --quick output missing $key" >&2
    exit 1
  fi
done
if grep -qF '"cache_hits": 0,' <<<"$out"; then
  echo "tier-1 FAIL: serve smoke saw zero cache hits" >&2
  exit 1
fi
# Hit-ratio honesty (the PR 5 caveat, now measured): the committed file
# must carry both contended-cache workload rows, not just the uniform
# replay loop whose ratio is an artifact of the pass count.
for key in '"workload": "uniform"' '"workload": "zipf"' \
    '"uniform_loop_hit_ratio"'; do
  if ! grep -qF "$key" BENCH_serve.json; then
    echo "tier-1 FAIL: BENCH_serve.json missing $key" >&2
    exit 1
  fi
done

# Store smoke: save the ingested world, reopen it, and (inside the binary)
# assert the reopened world is bit-identical — parts-level equality plus
# 8 relaxation queries — and that a flipped byte is rejected with a
# ValidationReport, not a panic or a silently-wrong world.
out=$(cargo run --release -p medkb-bench --bin bench_json -- --store --quick)
for key in '"cold_open_p50_s"' '"re_ingest_p50_s"' '"file_bytes"' \
    '"reach_memory_bytes"' '"reach_dense_over_hybrid"' '"queries_checked"'; do
  if ! grep -qF "$key" <<<"$out"; then
    echo "tier-1 FAIL: bench_json --store --quick output missing $key" >&2
    exit 1
  fi
done

# The committed SNOMED-scale store baseline must carry the recorded shape:
# cold-open speedup and the hybrid reachability footprint ratio. A refactor
# that regresses either shows up as a re-baseline in review, not silently.
for key in '"cold_open_speedup"' '"reach_dense_over_hybrid"' '"world_concepts"' \
    '"file_bytes"'; do
  if ! grep -qF "$key" BENCH_store.json; then
    echo "tier-1 FAIL: BENCH_store.json missing $key" >&2
    exit 1
  fi
done

# Delta smoke: incremental ingestion over document deltas. The binary
# itself asserts the delta-applied output is bit-identical to a full
# re-ingest of the same mutated inputs and that a publish invalidates the
# result cache exactly once per distinct query of the zipf stream. The
# differential sweep's fast pass already ran above (the fuzz smoke filter
# matches smoke_delta_one_world_per_shape).
out=$(cargo run --release -p medkb-bench --bin bench_json -- --delta --quick)
for key in '"full_reingest_p50_s"' '"deltas"' '"apply_p50_s"' \
    '"speedup_vs_full_reingest"' '"single_doc_speedup"' '"zipf_invalidation"' \
    'delta.apply_us' 'delta.docs.recounted'; do
  if ! grep -qF "$key" <<<"$out"; then
    echo "tier-1 FAIL: bench_json --delta --quick output missing $key" >&2
    exit 1
  fi
done
# Document-only deltas must stay on the incremental path: the smoke run
# gates zero reach-repair fallbacks and zero full recounts. A refactor
# that quietly turns every delta into a rebuild keeps bit-identity green
# while losing the entire point of ROADMAP item 3.
if ! grep -qF '"fallback_full_rebuilds": 0' <<<"$out"; then
  echo "tier-1 FAIL: delta smoke fell back to a full reach rebuild" >&2
  exit 1
fi
if ! grep -qF '"full_recounts": 0' <<<"$out"; then
  echo "tier-1 FAIL: delta smoke fell back to a full mention recount" >&2
  exit 1
fi

# The committed SNOMED-scale delta baseline must carry the recorded shape:
# per-size latencies, the asserted single-doc speedup, and the fallback
# counter (which must have recorded zero on the committed run too).
for key in '"single_doc_speedup"' '"speedup_vs_full_reingest"' \
    '"zipf_invalidation"' '"world_concepts"' '"fallback_full_rebuilds": 0'; do
  if ! grep -qF "$key" BENCH_delta.json; then
    echo "tier-1 FAIL: BENCH_delta.json missing $key" >&2
    exit 1
  fi
done

# HTTP smoke: the wire front end (DESIGN.md §16). The --http --quick bench
# asserts in-run that over-the-wire answers are bit-identical to in-process
# serve_concepts_batch, that concurrent connections coalesce, and that the
# token bucket 429s a greedy client while a polite one is untouched.
out=$(cargo run --release -p medkb-bench --bin bench_json -- --http --quick)
for key in '"qps"' '"p50_us"' '"p99_us"' '"p999_us"' '"coalesced_batches"' \
    '"shed"' '"rate_limited_429s"' '"wire_bit_identical": true' \
    'http.requests' 'http.coalesce.batches'; do
  if ! grep -qF "$key" <<<"$out"; then
    echo "tier-1 FAIL: bench_json --http --quick output missing $key" >&2
    exit 1
  fi
done

# Then the server as a process: ephemeral port, driven over a real socket
# by the std TcpStream client (`medkb-cli http`), killed cleanly.
addr_file=$(mktemp)
rm -f "$addr_file"
target/release/medkb-cli serve --addr 127.0.0.1:0 --addr-file "$addr_file" \
    </dev/null >/dev/null 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  [ -s "$addr_file" ] && break
  sleep 0.1
done
addr=$(head -1 "$addr_file")
term=$(sed -n 2p "$addr_file")
if [ -z "$addr" ] || [ -z "$term" ]; then
  echo "tier-1 FAIL: medkb-cli serve did not report an address" >&2
  exit 1
fi
target/release/medkb-cli http "$addr" GET /health | grep -qF '"status":"ok"' \
  || { echo "tier-1 FAIL: /health not ok" >&2; exit 1; }
target/release/medkb-cli http "$addr" POST /relax "{\"term\":\"$term\"}" \
    | grep -qF '"answers"' \
  || { echo "tier-1 FAIL: /relax returned no answers for \"$term\"" >&2; exit 1; }
target/release/medkb-cli http "$addr" GET /metrics | grep -qF 'http.requests' \
  || { echo "tier-1 FAIL: /metrics missing the http.* family" >&2; exit 1; }
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f "$addr_file"

# The committed wire baseline must carry the recorded shape: sustained
# QPS with tail latencies at 350k-concept scale, coalescing measurably
# active, and the traffic-shaping evidence (greedy 429d, polite clean).
for key in '"qps"' '"p99_us"' '"p999_us"' '"shed"' '"coalesced_batches"' \
    '"rate_limited_429s"' '"polite_429s": 0' '"wire_bit_identical": true' \
    '"world_concepts": 350000'; do
  if ! grep -qF "$key" BENCH_http.json; then
    echo "tier-1 FAIL: BENCH_http.json missing $key" >&2
    exit 1
  fi
done
coalesced=$(grep -o '"coalesced_batches": [0-9]*' BENCH_http.json | grep -o '[0-9]*$')
if ! awk -v c="${coalesced:-0}" 'BEGIN { exit !(c > 0) }'; then
  echo "tier-1 FAIL: BENCH_http.json coalesced_batches is ${coalesced:-missing}, expected > 0" >&2
  exit 1
fi

echo "tier-1 OK"
