#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md): release build + root test suite,
# plus a smoke pass of the ingestion benchmark. The smoke pass runs the
# full staged-vs-reference bit-identity asserts but (--quick) never
# rewrites the committed BENCH_ingest.json.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo run --release -p medkb-bench --bin bench_json -- --ingest --quick >/dev/null

echo "tier-1 OK"
