//! Quickstart: build a small world around the paper's own worked fragment
//! and ask one relaxed question.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::collections::HashMap;

use medkb::prelude::*;

fn main() -> Result<()> {
    // 1. The external knowledge source — the exact fragment of SNOMED CT
    //    the paper uses in Figures 4–6 (pain, kidney-disease, respiratory
    //    and body-temperature subtrees).
    let fragment = medkb::snomed::figures::paper_fragment();
    println!("terminology: {}", EkgStats::compute(&fragment.ekg));

    // 2. A miniature medical KB. Only some conditions exist as instances.
    let mut ob = OntologyBuilder::new();
    let drug = ob.concept("Drug");
    let indication = ob.concept("Indication");
    let finding = ob.concept("Finding");
    ob.relationship("treat", drug, indication);
    ob.relationship("hasFinding", indication, finding);
    let ontology = ob.build()?;
    let mut kb = KbBuilder::new(ontology);
    let fc = kb.ontology().lookup_concept("Finding").unwrap();
    for name in &fragment.flagged {
        kb.instance(name, fc);
    }
    let kb = kb.build()?;
    println!("KB: {} instances", kb.instance_count());

    // 3. Offline ingestion (Algorithm 1): contexts, mappings, frequencies,
    //    shortcut edges.
    let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 1);
    let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
    let ingested = ingest(&kb, fragment.ekg.clone(), &counts, None, &config)?;
    println!(
        "ingested: {} mappings, {} flagged concepts, {} shortcut edges, {} contexts",
        ingested.mappings.len(),
        ingested.flagged.len(),
        ingested.shortcuts_added,
        ingested.contexts.len()
    );

    // 4. Online relaxation (Algorithm 2): "pyelectasia" has no KB entry;
    //    query relaxation returns the semantically related entries that do
    //    exist — the paper's Scenario 1 (Figure 7).
    let relaxer = QueryRelaxer::new(ingested, config);
    let result = relaxer.relax("pyelectasia", None, 5)?;
    println!(
        "\nquery term \"pyelectasia\" resolved to {:?} (radius used: {})",
        relaxer.ingested().ekg.name(result.query_concept),
        result.radius_used
    );
    for answer in &result.answers {
        println!(
            "  {:.3}  {} ({} instance(s), {} hop(s))",
            answer.score,
            relaxer.ingested().ekg.name(answer.concept),
            answer.instances.len(),
            answer.hops
        );
    }
    Ok(())
}
