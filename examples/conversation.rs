//! The conversational integration of §6.1: Scenario 1 (conversation repair
//! on an unknown term, Figure 7) and Scenario 2 (concept expansion on a
//! known term, Figure 8), plus a context-carrying follow-up.
//!
//! ```text
//! cargo run --release --example conversation
//! ```

use medkb::eval::pipeline::{EvalConfig, EvalStack};
use medkb::nli::trainset::generate_training_queries;
use medkb::prelude::*;

fn main() -> Result<()> {
    eprintln!("building a small generated world…");
    let stack = EvalStack::build(EvalConfig::tiny(7)).expect("stack builds");

    // Assemble the Watson-Assistant-like engine: intent classifier trained
    // from the §4 bootstrap, gazetteer entity extraction, dialogue state.
    let queries = generate_training_queries(
        &stack.world.kb,
        &stack.world.contexts,
        |c| stack.world.tag_of(c),
        6,
        11,
    );
    let classifier = IntentClassifier::train(&queries);
    let extractor = EntityExtractor::build(&stack.world.kb);
    let relaxer = stack.relaxer(stack.config.relax.clone());
    let mut engine =
        ConversationEngine::new(stack.world.kb.clone(), relaxer, classifier, extractor);

    // Pick a treated, mapped finding for Scenario 2 and an unrepresented
    // terminology concept for Scenario 1.
    let rel = stack
        .world
        .kb
        .ontology()
        .lookup_relationship("Indication-hasFinding-Finding")
        .unwrap();
    let known = stack
        .world
        .kb
        .instances()
        .map(|(id, _)| id)
        .find(|&id| {
            !stack.world.kb.subjects(id, rel).is_empty()
                && stack.ingested.mappings.contains_key(id)
        })
        .expect("a treated finding exists");
    let unknown_name = stack
        .world
        .unrepresented_findings()
        .into_iter()
        .filter(|&c| stack.world.terminology.ekg.depth(c) >= 3)
        .map(|c| stack.world.terminology.ekg.name(c).to_string())
        .find(|name| extractor_is_blind(&stack, name))
        .expect("an unrepresented finding exists");

    println!("— Scenario 2 (Figure 8): known term, expanded answers —");
    let q = format!("what drugs treat {}", stack.world.kb.name(known));
    println!("user: {q}");
    println!("bot:  {}\n", engine.handle(&q).text());

    println!("— follow-up with inherited context —");
    let q2 = format!("what about {}", stack.world.kb.name(known));
    println!("user: {q2}");
    println!("bot:  {}\n", engine.handle(&q2).text());

    println!("— Scenario 1 (Figure 7): unknown term, conversation repair —");
    let q3 = format!("what drugs treat {unknown_name}");
    println!("user: {q3}");
    println!("bot:  {}\n", engine.handle(&q3).text());

    println!("— the same unknown term without query relaxation —");
    engine.use_relaxation = false;
    engine.reset();
    println!("user: {q3}");
    println!("bot:  {}", engine.handle(&q3).text());
    Ok(())
}

/// True when the extractor finds no KB instance inside `name` (so the term
/// is genuinely unknown to the KB).
fn extractor_is_blind(stack: &EvalStack, name: &str) -> bool {
    EntityExtractor::build(&stack.world.kb).extract(name).known.is_empty()
}
