//! Run Algorithm 1 over a generated world and report what it produced:
//! context space, mapping coverage per name shape, frequency sanity, and
//! the sparsity customization.
//!
//! ```text
//! cargo run --release --example ingestion_report
//! ```

use medkb::corpus::{CorpusConfig, CorpusGenerator, CorpusStats, MentionCounts};
use medkb::prelude::*;
use medkb::snomed::NameShape;

fn main() -> Result<()> {
    let world = MedWorld::generate(&WorldConfig::tiny(2020));
    let corpus =
        CorpusGenerator::new(&world.terminology, &world.oracle).generate(&CorpusConfig::tiny(21));
    let counts = MentionCounts::count(&corpus, &world.terminology.ekg);

    println!("terminology: {}", EkgStats::compute(&world.terminology.ekg));
    println!(
        "KB: {} instances, {} triples; corpus: {} documents, {} tokens",
        world.kb.instance_count(),
        world.kb.triple_count(),
        corpus.len(),
        corpus.token_count()
    );
    let cs = CorpusStats::compute(&corpus);
    println!(
        "corpus shape: {} types, mean sentence {:.1} tokens, Zipf exponent {:.2}\n",
        cs.types, cs.mean_sentence_len, cs.zipf_exponent
    );

    let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
    let out = ingest(&world.kb, world.terminology.ekg.clone(), &counts, None, &config)?;

    println!("contexts generated: {} (one per ontology relationship)", out.contexts.len());
    for ctx in out.contexts.iter().take(6) {
        println!("  {} → tag {:?}", ctx.label, out.tag(ctx.id));
    }
    println!("  …\n");

    println!("mappings: {} of {} instances", out.mappings.len(), world.kb.instance_count());
    for shape in
        [NameShape::Exact, NameShape::Synonym, NameShape::Typo, NameShape::Reworded, NameShape::Unmappable]
    {
        let of_shape = world.instances_with_shape(shape);
        let mapped = of_shape.iter().filter(|i| out.mappings.contains_key(**i)).count();
        println!("  {shape:?}: {mapped}/{} mapped (exact matcher)", of_shape.len());
    }

    println!(
        "\ncustomization: {} shortcut edges added; graph now {}",
        out.shortcuts_added,
        EkgStats::compute(&out.ekg)
    );

    // Frequency sanity: the root rolls up to normalized frequency 1.
    let root = out.ekg.root();
    println!(
        "\nfrequencies: root normalized freq (Treatment) = {:.3}, IC = {:.3}",
        out.freqs.freq(root, ContextTag::Treatment),
        out.freqs.ic(root, Some(ContextTag::Treatment))
    );
    let sample = out.flagged.iter().next().copied().expect("flagged concept exists");
    println!(
        "sample flagged concept {:?}: freq(Treatment) = {:.2e}, freq(Risk) = {:.2e}, \
         intrinsic IC = {:.3}",
        out.ekg.name(sample),
        out.freqs.freq(sample, ContextTag::Treatment),
        out.freqs.freq(sample, ContextTag::Risk),
        out.freqs.intrinsic_ic(sample)
    );
    Ok(())
}
