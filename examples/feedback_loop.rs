//! Relevance feedback in action — the extension §7.2 proposes ("incorporate
//! the user's relevance feedback … and progressively improve the relaxed
//! results").
//!
//! Each round, the simulated expert accepts/rejects the returned concepts
//! (judged by the world's oracle); the feedback store folds those signals
//! into the Eq. 5 scores, and P@10 is re-measured.
//!
//! ```text
//! cargo run --release --example feedback_loop
//! ```

use std::collections::HashSet;

use medkb::core::{Feedback, FeedbackStore};
use medkb::eval::pipeline::{EvalConfig, EvalStack};
use medkb::eval::relax_eval::build_workload;
use medkb::prelude::*;
use medkb::snomed::oracle::DEFAULT_RELEVANCE_THRESHOLD;

fn main() {
    eprintln!("building a small generated world…");
    let stack = EvalStack::build(EvalConfig::tiny(55)).expect("stack builds");
    let relaxer = stack.relaxer(stack.config.relax.clone());
    let workload = build_workload(&stack, 30);
    let term = &stack.world.terminology;

    let mut store = FeedbackStore::with_lambda(1.0);
    println!("round | P@10 | feedback entries");
    for round in 0..5 {
        let mut precisions = Vec::new();
        for &(q, ctx, tag) in &workload.queries {
            let res = relaxer
                .relax_concept_with_feedback(q, Some(ctx), 10, Some(&store))
                .expect("relax");
            let returned: Vec<_> = res.concepts().into_iter().take(10).collect();
            if returned.is_empty() {
                continue;
            }
            // The expert judges the returned concepts…
            let ext_q = Oracle::extension(&term.ekg, q);
            let relevant: HashSet<_> = returned
                .iter()
                .copied()
                .filter(|&b| {
                    stack.world.oracle.relevance(term, &ext_q, q, b, tag)
                        >= DEFAULT_RELEVANCE_THRESHOLD
                })
                .collect();
            precisions.push(relevant.len() as f64 / returned.len() as f64);
            // …and the judgments flow back as feedback.
            for &b in &returned {
                let signal = if relevant.contains(&b) {
                    Feedback::Accept
                } else {
                    Feedback::Reject
                };
                store.record(&relaxer.ingested().ekg, q, b, tag, signal);
            }
        }
        let p10 = 100.0 * precisions.iter().sum::<f64>() / precisions.len().max(1) as f64;
        println!("{round:>5} | {p10:>5.2} | {}", store.len());
    }
    println!(
        "\nPrecision improves as rejected neighbours are demoted and confirmed \
         ones promoted — the paper's proposed feedback extension, realized."
    );
}
