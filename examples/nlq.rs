//! The NLQ integration of §6.2, on the paper's running example:
//! *"What are the risks caused by using Aspirin with pyelectasia"*
//! (Figure 9).
//!
//! ```text
//! cargo run --example nlq
//! ```

use std::collections::HashMap;

use medkb::nli::nlq::Evidence;
use medkb::prelude::*;

fn main() -> Result<()> {
    // Figure-1-shaped ontology and a KB with aspirin and kidney findings.
    let fragment = medkb::snomed::figures::paper_fragment();
    let mut ob = OntologyBuilder::new();
    let drug = ob.concept("Drug");
    let indication = ob.concept("Indication");
    let risk = ob.concept("Risk");
    let finding = ob.concept("Finding");
    ob.relationship("treat", drug, indication);
    ob.relationship("cause", drug, risk);
    ob.relationship("hasFinding", indication, finding);
    ob.relationship("hasFinding", risk, finding);
    let ontology = ob.build()?;

    let mut kb = KbBuilder::new(ontology);
    let o = kb.ontology();
    let (dc, ic, rc, fc) = (
        o.lookup_concept("Drug").unwrap(),
        o.lookup_concept("Indication").unwrap(),
        o.lookup_concept("Risk").unwrap(),
        o.lookup_concept("Finding").unwrap(),
    );
    let r_treat = kb.ontology().lookup_relationship("Drug-treat-Indication").unwrap();
    let r_cause = kb.ontology().lookup_relationship("Drug-cause-Risk").unwrap();
    let r_ind = kb.ontology().lookup_relationship("Indication-hasFinding-Finding").unwrap();
    let r_risk = kb.ontology().lookup_relationship("Risk-hasFinding-Finding").unwrap();
    let aspirin = kb.instance("aspirin", dc);
    let pain_relief = kb.instance("pain relief", ic);
    let renal_risk = kb.instance("renal adverse events", rc);
    let headache = kb.instance("headache", fc);
    let kidney_disease = kb.instance("kidney disease", fc);
    let nephropathy = kb.instance("nephropathy", fc);
    kb.triple(aspirin, r_treat, pain_relief);
    kb.triple(pain_relief, r_ind, headache);
    kb.triple(aspirin, r_cause, renal_risk);
    kb.triple(renal_risk, r_risk, kidney_disease);
    kb.triple(renal_risk, r_risk, nephropathy);
    let kb = kb.build()?;

    let counts = MentionCounts::from_direct(HashMap::new(), HashMap::new(), 1);
    let config = RelaxConfig { mapping: MappingMethod::Exact, ..RelaxConfig::default() };
    let ingested = ingest(&kb, fragment.ekg.clone(), &counts, None, &config)?;
    let engine = NlqEngine::new(kb, QueryRelaxer::new(ingested, config));

    let query = "what are the risks caused by using aspirin with pyelectasia";
    println!("query: {query}\n");

    // —— Evidence generation ——
    println!("evidence sets:");
    for ev in engine.evidences(query) {
        print!("  [{}] →", ev.span);
        for cand in &ev.candidates {
            match cand {
                Evidence::Concept(c) => {
                    print!(" concept:{}", engine.kb().ontology().concept_name(*c))
                }
                Evidence::Relationship(r) => {
                    print!(" rel:{}", engine.kb().ontology().relationship(*r).name)
                }
                Evidence::DataValue { instance, score } => {
                    print!(" value:{}({score:.2})", engine.kb().name(*instance))
                }
            }
        }
        println!();
    }

    // —— Interpretation generation ——
    let interps = engine.interpret(query);
    println!("\n{} interpretation(s); top ranked:", interps.len());
    let top = &interps[0];
    println!(
        "  compactness {} | relaxation score {:.2} | tree: {}",
        top.compactness,
        top.score,
        top.tree
            .iter()
            .map(|&r| engine.kb().ontology().relationship_label(r))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // —— Execution ——
    let results = engine.execute(top);
    println!("\nanswers:");
    for inst in results {
        println!("  {}", engine.kb().name(inst));
    }
    Ok(())
}
