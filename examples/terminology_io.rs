//! Save a generated terminology in the RF2-flavoured TSV exchange format
//! and load it back — the route by which a downstream user plugs in their
//! own licensed terminology.
//!
//! ```text
//! cargo run --example terminology_io
//! ```

use medkb::prelude::*;
use medkb::snomed::{rf2, GeneratedTerminology};

fn main() -> Result<()> {
    let term = GeneratedTerminology::generate(&SnomedConfig::tiny(99));
    println!("generated: {}", EkgStats::compute(&term.ekg));

    let dir = std::env::temp_dir().join("medkb-terminology-io");
    rf2::save_dir(&term.ekg, &dir).expect("save succeeds");
    println!("saved to {}", dir.display());
    for file in ["concepts.tsv", "relationships.tsv"] {
        let len = std::fs::metadata(dir.join(file)).map(|m| m.len()).unwrap_or(0);
        println!("  {file}: {len} bytes");
    }

    let loaded = rf2::load_dir(&dir)?;
    println!("loaded:    {}", EkgStats::compute(&loaded));
    assert_eq!(loaded.len(), term.ekg.len());
    assert_eq!(loaded.edge_count(), term.ekg.edge_count());

    // Lookups behave identically.
    let sample = term.ekg.concepts().nth(term.ekg.len() / 2).unwrap();
    let name = term.ekg.name(sample);
    println!("lookup {:?}: {} hit(s) in the loaded copy", name, loaded.lookup_name(name).len());

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
